"""Tests for the structured event stream (``repro.telemetry.events``).

Covers the sink contract (memory, crash-safe file append, stderr
ticker), the disabled-path no-op, heartbeat/ETA arithmetic, and the
engine-level determinism guarantee: for a fixed seed and a pinned chunk
size the *types and order* of emitted events are identical serial vs
parallel, including under the recovered fault drill — and an
``events.jsonl`` written by a killed sweep survives into the resumed
run.
"""

import io
import json

import pytest

from repro.errors import ConfigurationError, TrialExecutionError
from repro.experiments import engine as engine_module
from repro.experiments import table2_attack_awgn
from repro.experiments.engine import FAULT_EVERY_ENV, MonteCarloEngine
from repro.telemetry.events import (
    EVENT_TYPES,
    EventStream,
    FileEventSink,
    MemoryEventSink,
    StderrProgressSink,
    format_event,
    format_heartbeat,
    get_event_stream,
    read_events_jsonl,
    summarize_events,
)


def _draw_trial(context, args, rng):
    """Module-level so worker processes could unpickle it (R003)."""
    return float(rng.normal())


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    """Isolate each test from process-wide stream and drill state."""
    monkeypatch.delenv(FAULT_EVERY_ENV, raising=False)
    engine_module._FAULTED_SEEDS.clear()
    get_event_stream().reset()
    yield
    engine_module._FAULTED_SEEDS.clear()
    get_event_stream().reset()


class _EagerPool:
    """ProcessPoolExecutor stand-in executing chunks in-process."""

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        if initializer is not None:
            initializer(*initargs)

    def submit(self, fn, *args):
        return _EagerFuture(fn(*args))

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class _EagerFuture:
    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value


class TestEventStream:
    def test_disabled_stream_is_a_no_op(self):
        stream = EventStream()
        sink = stream.add_sink(MemoryEventSink())
        stream.declare_trials(10)
        stream.heartbeat(5)
        stream.emit("run_started")
        assert sink.records == []
        assert stream.trials_done == 0

    def test_unknown_event_type_rejected(self):
        stream = EventStream()
        stream.enable()
        with pytest.raises(ConfigurationError):
            stream.emit("made_up_event")  # reprolint: disable=R010

    def test_records_carry_sequence_and_run_id(self):
        stream = EventStream()
        sink = stream.add_sink(MemoryEventSink())
        stream.enable(run_id="run-42")
        stream.run_started(experiments=["table2"], seed=1)
        stream.point_started("table2", "snr15", trials=3)
        first, second = sink.records
        assert first["event"] == "run_started"
        assert first["schema_version"] == 1
        assert [first["seq"], second["seq"]] == [1, 2]
        assert first["run_id"] == second["run_id"] == "run-42"
        assert "ts" in first

    def test_heartbeats_accumulate_monotonically_with_eta(self):
        stream = EventStream()
        sink = stream.add_sink(MemoryEventSink())
        stream.enable()
        stream.declare_trials(30)
        for completed in (10, 10, 10):
            stream.heartbeat(completed)
        done = [record["trials_done"] for record in sink.records]
        assert done == [10, 20, 30]
        assert all(record["trials_total"] == 30 for record in sink.records)
        assert all(
            record["eta_seconds"] is not None for record in sink.records
        )
        # ETA shrinks to zero as the declared total is consumed.
        assert sink.records[-1]["eta_seconds"] == 0.0
        assert stream.trials_done == 30

    def test_reset_closes_sinks_and_zeroes_progress(self, tmp_path):
        stream = EventStream()
        sink = stream.add_sink(FileEventSink(tmp_path / "events.jsonl"))
        stream.enable()
        stream.heartbeat(7)
        stream.reset()
        assert not stream.enabled
        assert stream.trials_done == 0
        with pytest.raises(ConfigurationError):
            sink.emit({"event": "heartbeat"})


class TestSinks:
    def test_file_sink_appends_across_reopens(self, tmp_path):
        path = tmp_path / "events.jsonl"
        first = FileEventSink(path)
        first.emit({"event": "run_started", "seq": 1})
        first.close()
        second = FileEventSink(path)
        second.emit({"event": "run_finished", "seq": 2})
        second.close()
        kinds = [record["event"] for record in read_events_jsonl(path)]
        assert kinds == ["run_started", "run_finished"]

    def test_reader_tolerates_a_torn_final_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps({"event": "heartbeat", "seq": 1}) + "\n")
            handle.write('{"event": "heartbe')  # killed mid-write
        events = read_events_jsonl(path)
        assert [record["seq"] for record in events] == [1]

    def test_reader_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_events_jsonl(tmp_path / "absent.jsonl")

    def test_stderr_sink_ticker_and_journal(self):
        buffer = io.StringIO()
        sink = StderrProgressSink(stream=buffer)
        sink.emit({"event": "heartbeat", "trials_done": 5, "ts": 0.0,
                   "trials_per_second": 2.5})
        sink.emit({"event": "point_finished", "experiment": "table2",
                   "point": "snr15", "rows_so_far": 1, "ts": 0.0})
        sink.close()
        text = buffer.getvalue()
        assert "\r" in text  # the rewritten ticker line
        assert "5 trials" in text
        assert "point_finished" in text
        assert "point=snr15" in text


class TestSummariesAndRendering:
    def test_summarize_counts_and_status(self):
        events = [
            {"event": "run_started"},
            {"event": "trial_retry"},
            {"event": "trial_failure"},
            {"event": "heartbeat", "trials_done": 12},
            {"event": "point_finished"},
            {"event": "run_finished", "status": "ok",
             "elapsed_seconds": 1.5},
        ]
        summary = summarize_events(events)
        assert summary["events"] == 6
        assert summary["retries"] == 1
        assert summary["failures"] == 1
        assert summary["points_finished"] == 1
        assert summary["trials_done"] == 12
        assert summary["status"] == "ok"
        assert summary["elapsed_seconds"] == 1.5

    def test_summarize_empty_stream(self):
        summary = summarize_events([])
        assert summary["events"] == 0
        assert summary["status"] is None
        assert set(summary["counts"]) == set(EVENT_TYPES)

    def test_format_heartbeat_and_event_lines(self):
        line = format_heartbeat({"trials_done": 4, "trials_total": 8,
                                 "trials_per_second": 2.0,
                                 "eta_seconds": 2.0, "ts": 0.0})
        assert "4/8 trials" in line
        assert "eta 2s" in line
        line = format_event({"event": "pool_rebuild", "trials_lost": 6,
                             "seq": 9, "ts": 0.0})
        assert "pool_rebuild" in line
        assert "trials_lost=6" in line
        assert "seq=" not in line


class TestEngineEventDeterminism:
    def _run_events(self, monkeypatch, workers):
        """Event-type sequence for one engine run (serial or pooled)."""
        engine_module._FAULTED_SEEDS.clear()
        stream = get_event_stream()
        stream.reset()
        sink = stream.add_sink(MemoryEventSink())
        stream.enable()
        if workers > 1:
            monkeypatch.setattr(
                engine_module, "ProcessPoolExecutor", _EagerPool
            )
        engine = MonteCarloEngine(
            workers=workers, chunk_size=2, on_error="retry"
        )
        with engine.session({}) as session:
            result = session.run(_draw_trial, 6, rng=5)
        stream.reset()
        return result, [record["event"] for record in sink.records]

    def test_serial_and_parallel_emit_identical_event_types(
        self, monkeypatch
    ):
        # Fault every seed once: each trial recovers on its retry, so
        # the stream carries trial_retry events in both execution modes.
        monkeypatch.setenv(FAULT_EVERY_ENV, "1")
        serial_rows, serial_events = self._run_events(monkeypatch, workers=1)
        pooled_rows, pooled_events = self._run_events(monkeypatch, workers=2)
        assert serial_rows == pooled_rows
        assert serial_events == pooled_events
        assert "trial_retry" in serial_events
        # One heartbeat per chunk: 6 trials / chunk_size 2.
        assert serial_events.count("heartbeat") == 3

    def test_clean_run_emits_only_heartbeats(self, monkeypatch):
        _, serial_events = self._run_events(monkeypatch, workers=1)
        _, pooled_events = self._run_events(monkeypatch, workers=2)
        assert serial_events == pooled_events == ["heartbeat"] * 3


class TestKilledRunEventStream:
    PARAMS = {"snrs_db": (15, 17), "trials": 3, "include_authentic": False}

    def test_events_survive_a_killed_then_resumed_sweep(
        self, tmp_path, monkeypatch
    ):
        # Same drill as the checkpoint suite: at seed 3 the fault drill
        # aborts inside the second SNR point, "killing" the run after
        # the first point checkpointed.
        events_path = tmp_path / "events.jsonl"
        stream = get_event_stream()
        stream.add_sink(FileEventSink(events_path))
        stream.enable(run_id="killed-run")
        monkeypatch.setenv(FAULT_EVERY_ENV, "5")
        engine_module._FAULTED_SEEDS.clear()
        with pytest.raises(TrialExecutionError):
            table2_attack_awgn.run(
                rng=3, checkpoint_dir=str(tmp_path / "ckpt"), **self.PARAMS
            )
        crashed = read_events_jsonl(events_path)
        crashed_kinds = [record["event"] for record in crashed]
        assert "point_started" in crashed_kinds
        assert "trial_failure" in crashed_kinds
        assert "checkpoint_saved" in crashed_kinds

        # Resume against the same stream: the file sink appends, so the
        # crashed run's record survives ahead of the resumed one.
        monkeypatch.delenv(FAULT_EVERY_ENV)
        engine_module._FAULTED_SEEDS.clear()
        result = table2_attack_awgn.run(
            rng=3, checkpoint_dir=str(tmp_path / "ckpt"), resume=True,
            **self.PARAMS
        )
        stream.reset()
        events = read_events_jsonl(events_path)
        kinds = [record["event"] for record in events]
        assert kinds[: len(crashed_kinds)] == crashed_kinds
        assert "checkpoint_hit" in kinds  # snr15 served from disk
        assert len(result.rows) == 2
        # Heartbeat trial counts never decrease within one enable cycle
        # (the resume re-enabled nothing: same stream, same counters).
        done = [r["trials_done"] for r in events if r["event"] == "heartbeat"]
        assert done == sorted(done)
