"""Transmitter <-> receiver round trips for the full 802.11g chain."""

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel
from repro.errors import ConfigurationError, DecodingError
from repro.utils.signal_ops import Waveform
from repro.wifi.constants import RATES, SYMBOL_LENGTH
from repro.wifi.interleaver import deinterleave, interleave
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter


class TestInterleaver:
    @pytest.mark.parametrize("rate", sorted(RATES))
    def test_roundtrip_per_rate(self, rate):
        params = RATES[rate]
        rng = np.random.default_rng(rate)
        bits = rng.integers(0, 2, 2 * params.coded_bits_per_symbol).astype(np.uint8)
        forward = interleave(
            bits, params.coded_bits_per_symbol, params.bits_per_subcarrier
        )
        assert not np.array_equal(forward, bits)  # actually permutes
        back = deinterleave(
            forward, params.coded_bits_per_symbol, params.bits_per_subcarrier
        )
        assert np.array_equal(back, bits)

    def test_spreads_adjacent_bits(self):
        """Adjacent coded bits must land on distant subcarriers."""
        params = RATES[54]
        n = params.coded_bits_per_symbol
        bits = np.zeros(n, dtype=np.uint8)
        bits[0] = bits[1] = 1
        forward = interleave(bits, n, params.bits_per_subcarrier)
        positions = np.flatnonzero(forward)
        subcarrier_gap = abs(positions[0] - positions[1]) // params.bits_per_subcarrier
        assert subcarrier_gap >= 2

    def test_rejects_ragged_input(self):
        with pytest.raises(ConfigurationError):
            interleave(np.zeros(100, dtype=np.uint8), 288, 6)


class TestFullChain:
    @pytest.mark.parametrize("rate", sorted(RATES))
    def test_clean_roundtrip_all_rates(self, rate):
        psdu = bytes((7 * i + rate) % 256 for i in range(33))
        tx = WifiTransmitter(rate_mbps=rate)
        result = tx.transmit_psdu(psdu)
        decoded = WifiReceiver(rate_mbps=rate).decode_psdu(
            result.waveform, psdu_bytes=len(psdu)
        )
        assert decoded.psdu == psdu

    def test_roundtrip_without_preamble(self):
        tx = WifiTransmitter(rate_mbps=54, include_preamble=False)
        result = tx.transmit_psdu(b"no-preamble")
        decoded = WifiReceiver(54).decode_psdu(
            result.waveform, psdu_bytes=11, has_preamble=False
        )
        assert decoded.psdu == b"no-preamble"

    def test_roundtrip_with_offset(self):
        tx = WifiTransmitter(rate_mbps=24)
        result = tx.transmit_psdu(b"offset-frame")
        padded = Waveform(
            np.concatenate([np.zeros(173, dtype=complex), result.waveform.samples]),
            20e6,
        )
        decoded = WifiReceiver(24).decode_psdu(
            padded, psdu_bytes=12, frame_start=173
        )
        assert decoded.psdu == b"offset-frame"

    def test_roundtrip_survives_moderate_noise(self):
        tx = WifiTransmitter(rate_mbps=54)
        result = tx.transmit_psdu(bytes(range(64)))
        noisy = AwgnChannel(28, rng=0, normalize=False).apply(result.waveform)
        decoded = WifiReceiver(54).decode_psdu(noisy, psdu_bytes=64)
        assert decoded.psdu == bytes(range(64))

    def test_roundtrip_survives_flat_channel_gain(self):
        tx = WifiTransmitter(rate_mbps=54)
        result = tx.transmit_psdu(b"fading-check")
        gained = result.waveform.with_samples(
            result.waveform.samples * (0.7 * np.exp(1j * 0.9))
        )
        decoded = WifiReceiver(54).decode_psdu(gained, psdu_bytes=12)
        assert decoded.psdu == b"fading-check"

    def test_waveform_length_structure(self):
        tx = WifiTransmitter(rate_mbps=54)
        result = tx.transmit_psdu(bytes(40))
        expected_symbols = tx.num_symbols_for(40)
        assert len(result.waveform) == 400 + expected_symbols * SYMBOL_LENGTH

    def test_transmit_data_points_direct(self):
        tx = WifiTransmitter(rate_mbps=54, include_preamble=False)
        rng = np.random.default_rng(5)
        points = rng.standard_normal(96) + 1j * rng.standard_normal(96)
        result = tx.transmit_data_points(points)
        assert result.num_symbols == 2
        assert len(result.waveform) == 2 * SYMBOL_LENGTH

    def test_transmit_rejects_empty_psdu(self):
        with pytest.raises(ConfigurationError):
            WifiTransmitter().transmit_psdu(b"")

    def test_receiver_rejects_short_waveform(self):
        receiver = WifiReceiver(54)
        with pytest.raises(DecodingError):
            receiver.decode_psdu(Waveform(np.zeros(100, dtype=complex), 20e6), 10)
