"""Tests for the hardware front-end, platform profiles, and RSSI."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.cc26x2 import Cc26x2Receiver, cc26x2_receiver_config
from repro.hardware.frontend import (
    FrontEnd,
    FrontEndConfig,
    apply_iq_imbalance,
    quantize_iq,
)
from repro.hardware.rssi import RssiEstimator
from repro.hardware.usrp import (
    UsrpN210,
    gnuradio_simulation_receiver_config,
    usrp_receiver_config,
)
from repro.utils.signal_ops import Waveform, average_power


def _tone(n=2048, rate=4e6):
    return Waveform(0.5 * np.exp(2j * np.pi * 0.1 * np.arange(n)), rate)


class TestQuantization:
    def test_high_resolution_is_near_transparent(self):
        tone = _tone()
        quantized = quantize_iq(tone.samples, bits=16, full_scale=2.0)
        assert np.max(np.abs(quantized - tone.samples)) < 1e-3

    def test_low_resolution_distorts(self):
        tone = _tone()
        quantized = quantize_iq(tone.samples, bits=4, full_scale=2.0)
        error = average_power(quantized - tone.samples)
        assert error > 1e-4

    def test_clipping_at_full_scale(self):
        big = np.array([10.0 + 10.0j])
        quantized = quantize_iq(big, bits=8, full_scale=1.0)
        assert abs(quantized[0].real) <= 1.0
        assert abs(quantized[0].imag) <= 1.0

    def test_rejects_bad_bits(self):
        with pytest.raises(ConfigurationError):
            quantize_iq(np.ones(4, dtype=complex), bits=0, full_scale=1.0)


class TestIqImbalance:
    def test_identity_when_zero(self):
        tone = _tone()
        out = apply_iq_imbalance(tone.samples, 0.0, 0.0)
        assert np.allclose(out, tone.samples)

    def test_gain_imbalance_changes_q_power(self):
        tone = _tone()
        out = apply_iq_imbalance(tone.samples, 1.0, 0.0)
        assert np.var(out.imag) > np.var(tone.samples.imag)


class TestFrontEnd:
    def test_transmit_applies_gain(self):
        config = FrontEndConfig(gain=0.75, oscillator_ppm=0.0)
        fe = FrontEnd(config, rng=0)
        tone = _tone()
        out = fe.transmit(tone)
        assert average_power(out.samples) == pytest.approx(
            0.75**2 * average_power(tone.samples), rel=0.01
        )

    def test_cfo_within_ppm_budget(self):
        config = FrontEndConfig(oscillator_ppm=2.5, carrier_hz=2.435e9)
        for seed in range(5):
            fe = FrontEnd(config, rng=seed)
            assert abs(fe.cfo_hz) <= 2.5e-6 * 2.435e9

    def test_receive_is_nearly_transparent_at_14_bits(self):
        fe = FrontEnd(FrontEndConfig(oscillator_ppm=0.0), rng=0)
        tone = _tone()
        out = fe.receive(tone)
        assert np.max(np.abs(out.samples - tone.samples)) < 1e-3

    def test_receive_of_silence_is_silence(self):
        fe = FrontEnd(rng=0)
        silent = Waveform(np.zeros(64, dtype=complex), 4e6)
        assert not fe.receive(silent).samples.any()

    def test_rejects_bad_gain(self):
        with pytest.raises(ConfigurationError):
            FrontEnd(FrontEndConfig(gain=0.0))


class TestPlatformProfiles:
    def test_usrp_uses_quadrature_demodulation(self):
        assert usrp_receiver_config().demodulation == "quadrature"

    def test_cc26x2_uses_coherent_demodulation(self):
        assert cc26x2_receiver_config().demodulation == "matched_filter"

    def test_usrp_has_implementation_loss(self):
        assert usrp_receiver_config().implementation_loss_db > 0
        assert cc26x2_receiver_config().implementation_loss_db == 0

    def test_gnuradio_simulation_profile_is_naive(self):
        config = gnuradio_simulation_receiver_config()
        assert config.decimation == "naive"
        assert config.demodulation == "quadrature"

    def test_bundles_provide_front_ends(self):
        assert UsrpN210(rng=0).front_end() is not None
        assert Cc26x2Receiver(rng=0).front_end() is not None


class TestRssi:
    def test_unit_power_reads_reference(self):
        estimator = RssiEstimator(reference_dbm=-40.0)
        waveform = Waveform(np.ones(4096, dtype=complex), 4e6)
        assert estimator.estimate(waveform) == pytest.approx(-40.0, abs=0.1)

    def test_quarter_power_reads_6db_lower(self):
        estimator = RssiEstimator(reference_dbm=-40.0)
        waveform = Waveform(0.5 * np.ones(4096, dtype=complex), 4e6)
        assert estimator.estimate(waveform) == pytest.approx(-46.0, abs=0.2)

    def test_offset_applied(self):
        estimator = RssiEstimator(reference_dbm=-40.0, offset_db=3.0)
        waveform = Waveform(np.ones(4096, dtype=complex), 4e6)
        assert estimator.estimate(waveform) == pytest.approx(-37.0, abs=0.1)

    def test_rejects_empty_window(self):
        estimator = RssiEstimator()
        with pytest.raises(ConfigurationError):
            estimator.estimate(Waveform(np.ones(10, dtype=complex), 4e6), start=10)

    def test_from_power(self):
        estimator = RssiEstimator(offset_db=1.5)
        assert estimator.estimate_from_power_dbm(-50.0) == pytest.approx(-48.5)
