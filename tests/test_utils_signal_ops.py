"""Tests for waveform utilities: power, resampling, interpolation, shift."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.signal_ops import (
    Waveform,
    average_power,
    db_to_linear,
    fft_interpolate,
    frequency_shift,
    linear_to_db,
    lowpass_filter,
    normalize_power,
    papr_db,
    polyphase_resample,
)


class TestWaveform:
    def test_duration(self):
        w = Waveform(np.zeros(400, dtype=complex), 4e6)
        assert w.duration_s == pytest.approx(1e-4)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            Waveform(np.zeros(4, dtype=complex), 0.0)

    def test_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            Waveform(np.zeros((2, 2), dtype=complex), 1.0)

    def test_resampled_to_changes_length(self):
        w = Waveform(np.ones(100, dtype=complex), 4e6)
        up = w.resampled_to(20e6)
        assert len(up) == 500
        assert up.sample_rate_hz == 20e6

    def test_time_axis(self):
        w = Waveform(np.ones(3, dtype=complex), 2.0)
        assert np.allclose(w.time_axis(), [0.0, 0.5, 1.0])


class TestPower:
    def test_average_power_of_unit_tone(self):
        tone = np.exp(2j * np.pi * 0.1 * np.arange(1000))
        assert average_power(tone) == pytest.approx(1.0)

    def test_normalize_power(self):
        x = 3.0 * np.ones(10, dtype=complex)
        assert average_power(normalize_power(x)) == pytest.approx(1.0)

    def test_normalize_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            normalize_power(np.zeros(4, dtype=complex))

    def test_db_roundtrip(self):
        assert linear_to_db(db_to_linear(13.0)) == pytest.approx(13.0)

    def test_papr_of_constant_envelope_is_zero(self):
        tone = np.exp(2j * np.pi * 0.05 * np.arange(256))
        assert papr_db(tone) == pytest.approx(0.0, abs=1e-9)

    @given(st.floats(min_value=0.01, max_value=100.0))
    def test_normalize_to_target(self, target):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        assert average_power(normalize_power(x, target)) == pytest.approx(target)


class TestResampling:
    def test_fft_interpolate_preserves_samples(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        # Band-limit so interpolation is exact at original points.
        spectrum = np.fft.fft(x)
        spectrum[16:48] = 0
        x = np.fft.ifft(spectrum)
        y = fft_interpolate(x, 5)
        assert y.size == 5 * x.size
        assert np.allclose(y[::5], x, atol=1e-9)

    def test_fft_interpolate_preserves_energy_scale(self):
        x = np.exp(2j * np.pi * 3 * np.arange(64) / 64)
        y = fft_interpolate(x, 4)
        assert average_power(y) == pytest.approx(average_power(x), rel=1e-6)

    def test_fft_interpolate_factor_one(self):
        x = np.arange(8, dtype=complex)
        assert np.allclose(fft_interpolate(x, 1), x)

    def test_polyphase_identity(self):
        x = np.arange(32, dtype=complex)
        assert np.allclose(polyphase_resample(x, 4e6, 4e6), x)

    def test_polyphase_ratio(self):
        x = np.ones(100, dtype=complex)
        y = polyphase_resample(x, 4e6, 20e6)
        assert y.size == 500

    def test_rejects_bad_factor(self):
        with pytest.raises(ConfigurationError):
            fft_interpolate(np.ones(4, dtype=complex), 0)


class TestFrequencyShift:
    def test_shift_moves_tone(self):
        n = 1024
        rate = 20e6
        tone = np.exp(2j * np.pi * 1e6 * np.arange(n) / rate)
        shifted = frequency_shift(tone, 2e6, rate)
        spectrum = np.abs(np.fft.fft(shifted))
        peak_bin = np.argmax(spectrum)
        assert peak_bin == pytest.approx(3e6 / rate * n, abs=1)

    def test_shift_preserves_power(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        y = frequency_shift(x, 123456.0, 4e6)
        assert average_power(y) == pytest.approx(average_power(x))


class TestLowpass:
    def test_passes_in_band_tone(self):
        rate = 20e6
        tone = np.exp(2j * np.pi * 0.5e6 * np.arange(4000) / rate)
        filtered = lowpass_filter(tone, 1.5e6, rate)
        # Ignore edge transients.
        assert average_power(filtered[200:-200]) == pytest.approx(1.0, rel=0.05)

    def test_rejects_out_of_band_tone(self):
        rate = 20e6
        tone = np.exp(2j * np.pi * 6e6 * np.arange(4000) / rate)
        filtered = lowpass_filter(tone, 1.5e6, rate)
        assert average_power(filtered[200:-200]) < 0.01

    def test_group_delay_removed(self):
        rate = 20e6
        impulse = np.zeros(512, dtype=complex)
        impulse[100] = 1.0
        filtered = lowpass_filter(impulse, 2e6, rate)
        assert np.argmax(np.abs(filtered)) == 100

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ConfigurationError):
            lowpass_filter(np.ones(16, dtype=complex), 11e6, 20e6)
