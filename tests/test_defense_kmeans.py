"""Tests for the from-scratch k-means implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defense.kmeans import cluster_phase_offset, kmeans
from repro.errors import ConfigurationError


def _four_clusters(n_per=50, spread=0.05, rotation=0.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.exp(1j * (np.array([0, 0.5, 1.0, 1.5]) * np.pi + rotation))
    points = []
    for center in centers:
        noise = spread * (rng.standard_normal(n_per) + 1j * rng.standard_normal(n_per))
        points.append(center + noise)
    return np.concatenate(points)


class TestKMeans:
    def test_finds_four_clusters(self):
        points = _four_clusters()
        result = kmeans(points, k=4, rng=0)
        expected = np.exp(1j * np.array([-np.pi, -np.pi / 2, 0, np.pi / 2]))
        # Centres sorted by angle; compare as sets via minimum distances.
        for center in result.centers:
            assert np.min(np.abs(center - expected)) < 0.05

    def test_labels_consistent_with_centers(self):
        points = _four_clusters()
        result = kmeans(points, k=4, rng=1)
        for point, label in zip(points, result.labels):
            distances = np.abs(point - result.centers)
            assert np.argmin(distances) == label

    def test_inertia_small_for_tight_clusters(self):
        tight = kmeans(_four_clusters(spread=0.01), k=4, rng=0)
        loose = kmeans(_four_clusters(spread=0.3), k=4, rng=0)
        assert tight.inertia < loose.inertia

    def test_single_cluster(self):
        points = np.ones(10, dtype=complex)
        result = kmeans(points, k=1, rng=0)
        assert result.centers[0] == pytest.approx(1.0)
        assert result.inertia == pytest.approx(0.0)

    def test_k_equals_n(self):
        points = np.array([0.0, 1.0, 2.0, 3.0], dtype=complex)
        result = kmeans(points, k=4, rng=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_with_seed(self):
        points = _four_clusters(seed=5)
        a = kmeans(points, k=4, rng=9)
        b = kmeans(points, k=4, rng=9)
        assert np.allclose(a.centers, b.centers)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            kmeans(np.ones(3, dtype=complex), k=4)
        with pytest.raises(ConfigurationError):
            kmeans(np.ones(3, dtype=complex), k=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_inertia_never_exceeds_total_variance(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.standard_normal(60) + 1j * rng.standard_normal(60)
        result = kmeans(points, k=4, rng=seed)
        around_mean = float(np.sum(np.abs(points - points.mean()) ** 2))
        assert result.inertia <= around_mean + 1e-9


class TestPhaseOffset:
    def test_zero_for_axis_aligned(self):
        result = kmeans(_four_clusters(spread=0.01), k=4, rng=0)
        assert cluster_phase_offset(result) == pytest.approx(0.0, abs=0.02)

    def test_detects_rotation(self):
        result = kmeans(_four_clusters(spread=0.01, rotation=0.2), k=4, rng=0)
        assert cluster_phase_offset(result) == pytest.approx(0.2, abs=0.03)

    def test_rejects_wrong_cluster_count(self):
        result = kmeans(_four_clusters(), k=3, rng=0)
        with pytest.raises(ConfigurationError):
            cluster_phase_offset(result)
