"""Tests for the attack's interpolation, selection, and quantization."""

import numpy as np
import pytest

from repro.attack.interpolate import (
    INTERPOLATION_FACTOR,
    analysis_window,
    chunk_spectrum,
    segment_into_wifi_symbols,
    spectrum_table,
    to_wifi_rate,
)
from repro.attack.quantize import (
    optimize_scale,
    quantization_error,
    quantize_points,
)
from repro.attack.selection import (
    coarse_highlight,
    indexes_to_logical,
    logical_to_indexes,
    select_subcarriers,
)
from repro.errors import ConfigurationError, EmulationError
from repro.utils.signal_ops import Waveform
from repro.wifi.qam import modulation_for_name


class TestInterpolation:
    def test_factor_five(self, authentic_link):
        native = authentic_link.sent.waveform
        upsampled = to_wifi_rate(native)
        assert len(upsampled) == INTERPOLATION_FACTOR * len(native)
        assert upsampled.sample_rate_hz == 20e6

    def test_preserves_original_samples(self, authentic_link):
        native = authentic_link.sent.waveform
        upsampled = to_wifi_rate(native)
        # FFT interpolation passes through the originals almost exactly
        # (the waveform is band-limited well under 2 MHz).
        assert np.allclose(
            upsampled.samples[:: INTERPOLATION_FACTOR], native.samples, atol=0.05
        )

    def test_polyphase_method(self, authentic_link):
        upsampled = to_wifi_rate(authentic_link.sent.waveform, method="polyphase")
        assert upsampled.sample_rate_hz == 20e6

    def test_rejects_unknown_method(self, authentic_link):
        with pytest.raises(ConfigurationError):
            to_wifi_rate(authentic_link.sent.waveform, method="linear")

    def test_rejects_non_integer_ratio(self):
        odd = Waveform(np.ones(100, dtype=complex), 3e6)
        with pytest.raises(ConfigurationError):
            to_wifi_rate(odd)


class TestSegmentation:
    def test_chunk_shape(self):
        waveform = Waveform(np.ones(400, dtype=complex), 20e6)
        chunks = segment_into_wifi_symbols(waveform)
        assert chunks.shape == (5, 80)

    def test_trailing_chunk_zero_padded(self):
        waveform = Waveform(np.ones(100, dtype=complex), 20e6)
        chunks = segment_into_wifi_symbols(waveform)
        assert chunks.shape == (2, 80)
        assert np.allclose(chunks[1, 20:], 0.0)

    def test_rejects_empty(self):
        with pytest.raises(EmulationError):
            segment_into_wifi_symbols(Waveform(np.zeros(0, dtype=complex), 20e6))

    def test_analysis_window_drops_cp_region(self):
        chunk = np.arange(80, dtype=complex)
        window = analysis_window(chunk)
        assert window.size == 64
        assert window[0] == 16

    def test_spectrum_table_matches_single_chunk_fft(self):
        rng = np.random.default_rng(0)
        chunks = rng.standard_normal((3, 80)) + 1j * rng.standard_normal((3, 80))
        table = spectrum_table(chunks)
        assert np.allclose(table[1], chunk_spectrum(chunks[1]))


class TestSelection:
    def test_selects_paper_bins_for_zigbee(self, authentic_link):
        chunks = segment_into_wifi_symbols(to_wifi_rate(authentic_link.sent.waveform))
        selection = select_subcarriers(spectrum_table(chunks))
        assert tuple(selection.indexes) == (0, 1, 2, 3, 61, 62, 63)

    def test_selected_bins_capture_most_energy(self, authentic_link):
        chunks = segment_into_wifi_symbols(to_wifi_rate(authentic_link.sent.waveform))
        spectra = spectrum_table(chunks)
        selection = select_subcarriers(spectra)
        total = np.sum(np.abs(spectra) ** 2)
        kept = np.sum(np.abs(spectra[:, selection.indexes]) ** 2)
        assert kept / total > 0.9

    def test_coarse_highlight_thresholding(self):
        table = np.zeros((2, 64))
        table[0, 5] = 10.0
        highlighted = coarse_highlight(table, threshold=3.0)
        assert highlighted[0, 5]
        assert highlighted.sum() == 1

    def test_num_subcarriers_respected(self, authentic_link):
        chunks = segment_into_wifi_symbols(to_wifi_rate(authentic_link.sent.waveform))
        selection = select_subcarriers(spectrum_table(chunks), num_subcarriers=3)
        assert selection.indexes.size == 3

    def test_logical_conversion_roundtrip(self):
        indexes = np.array([0, 1, 31, 32, 63])
        logical = indexes_to_logical(indexes)
        assert list(logical) == [0, 1, 31, -32, -1]
        assert np.array_equal(logical_to_indexes(logical), indexes)

    def test_rejects_bad_table(self):
        with pytest.raises(ConfigurationError):
            select_subcarriers(np.zeros((2, 32)))


class TestQuantization:
    def test_exact_points_have_zero_error(self):
        modulation = modulation_for_name("64qam")
        points = 5.0 * modulation.constellation()[:10]
        assert quantization_error(points, modulation, 5.0) == pytest.approx(0.0)

    def test_optimizer_finds_generating_scale(self):
        modulation = modulation_for_name("64qam")
        rng = np.random.default_rng(0)
        table = modulation.constellation()
        points = 7.5 * table[rng.integers(0, 64, 200)]
        scale = optimize_scale(points, modulation)
        assert scale == pytest.approx(7.5, rel=0.01)

    def test_optimizer_beats_naive_scales(self):
        rng = np.random.default_rng(1)
        points = rng.standard_normal(64) + 1j * rng.standard_normal(64)
        modulation = modulation_for_name("64qam")
        best = optimize_scale(points, modulation)
        best_error = quantization_error(points, modulation, best)
        for candidate in (0.1, 0.5, 1.0, 2.0, 5.0):
            assert best_error <= quantization_error(points, modulation, candidate) + 1e-9

    def test_quantize_points_structure(self):
        rng = np.random.default_rng(2)
        points = 3.0 * (rng.standard_normal(32) + 1j * rng.standard_normal(32))
        result = quantize_points(points)
        assert result.quantized.shape == points.shape
        assert result.error >= 0
        # quantized = scale * constellation_points exactly.
        assert np.allclose(
            result.quantized, result.scale * result.constellation_points
        )

    def test_fixed_scale_respected(self):
        points = np.array([1.0 + 1.0j])
        result = quantize_points(points, scale=2.0)
        assert result.scale == 2.0

    def test_zero_scale_yields_zeros(self):
        points = np.array([1.0 + 1.0j])
        result = quantize_points(points, scale=0.0)
        assert np.allclose(result.quantized, 0.0)

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            quantize_points(np.zeros(0, dtype=complex))
