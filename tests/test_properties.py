"""Cross-module property-based tests of the system's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attack.emulator import WaveformEmulationAttack
from repro.defense.constellation import reconstruct_constellation
from repro.defense.detector import CumulantDetector
from repro.defense.moments import estimate_cumulants
from repro.zigbee.receiver import ZigBeeReceiver
from repro.zigbee.transmitter import ZigBeeTransmitter

payloads = st.binary(min_size=1, max_size=40)


class TestLinkInvariants:
    @settings(max_examples=10, deadline=None)
    @given(payloads)
    def test_any_payload_roundtrips_noiselessly(self, payload):
        sent = ZigBeeTransmitter().transmit_payload(payload)
        packet = ZigBeeReceiver().receive(sent.waveform, known_start=0)
        assert packet.fcs_ok
        assert packet.mac_frame.payload == payload

    @settings(max_examples=6, deadline=None)
    @given(payloads)
    def test_any_payload_survives_emulation(self, payload):
        """The attack's core invariant: emulation never breaks decoding."""
        sent = ZigBeeTransmitter().transmit_payload(payload)
        attack = WaveformEmulationAttack()
        emulated = attack.emulate(sent.waveform)
        packet = ZigBeeReceiver().receive(attack.transmit_waveform(emulated))
        assert packet.fcs_ok
        assert packet.mac_frame.payload == payload

    @settings(max_examples=6, deadline=None)
    @given(payloads)
    def test_emulation_always_leaves_chip_footprints(self, payload):
        """...but always leaves detectable chip errors (the defense's basis)."""
        sent = ZigBeeTransmitter().transmit_payload(payload)
        attack = WaveformEmulationAttack()
        emulated = attack.emulate(sent.waveform)
        packet = ZigBeeReceiver().receive(attack.transmit_waveform(emulated))
        assert max(packet.diagnostics.hamming_distances) >= 1


class TestStatisticInvariants:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6), st.floats(min_value=0.2, max_value=5.0))
    def test_de2_invariant_to_chip_scaling(self, seed, gain):
        rng = np.random.default_rng(seed)
        chips = 2.0 * rng.integers(0, 2, 512) - 1.0
        chips = chips + 0.1 * rng.standard_normal(512)
        detector = CumulantDetector()
        a = detector.statistic(chips).distance_squared
        b = detector.statistic(gain * chips).distance_squared
        assert b == pytest.approx(a, rel=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_abs_c40_invariant_to_rotation(self, seed):
        rng = np.random.default_rng(seed)
        chips = 2.0 * rng.integers(0, 2, 1024) - 1.0
        points = reconstruct_constellation(chips)
        theta = rng.uniform(0, 2 * np.pi)
        detector = CumulantDetector(use_abs_c40=True)
        a = detector.statistic_from_points(points).distance_squared
        b = detector.statistic_from_points(
            points * np.exp(1j * theta)
        ).distance_squared
        assert b == pytest.approx(a, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6))
    def test_cumulants_bounded_for_normalized_input(self, seed):
        """For unit-power samples, |C42_hat| <= |m4| + 3 stays modest."""
        rng = np.random.default_rng(seed)
        samples = rng.standard_normal(256) + 1j * rng.standard_normal(256)
        samples /= np.sqrt(np.mean(np.abs(samples) ** 2))
        estimate = estimate_cumulants(samples)
        m4 = float(np.mean(np.abs(samples) ** 4))
        assert abs(estimate.c42_hat) <= m4 + 3.0
        assert abs(estimate.c40_hat) <= m4 + 3.0


_finite_scores = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=30,
)
_nan_padding = st.lists(st.just(float("nan")), min_size=0, max_size=5)


class TestRocProperties:
    @settings(max_examples=40, deadline=None)
    @given(_finite_scores, _finite_scores, st.integers(2, 50),
           _nan_padding, _nan_padding, st.randoms(use_true_random=False))
    def test_rates_monotone_and_auc_bounded(
        self, h0, h1, num_points, h0_nans, h1_nans, shuffler
    ):
        """TPR/FPR are non-decreasing as the threshold descends and the
        AUC stays in [0, 1], for any populations — NaNs included."""
        from repro.defense.roc import roc_curve

        h0_mixed = h0 + h0_nans
        h1_mixed = h1 + h1_nans
        shuffler.shuffle(h0_mixed)
        shuffler.shuffle(h1_mixed)
        curve = roc_curve(h0_mixed, h1_mixed, num_points=num_points)
        # Non-increasing, not strict: when every score is equal and huge
        # the +/-margin underflows and the grid degenerates to one value.
        assert np.all(np.diff(curve.thresholds) <= 0)
        assert np.all(np.diff(curve.true_positive_rates) >= 0)
        assert np.all(np.diff(curve.false_positive_rates) >= 0)
        assert -1e-12 <= curve.auc <= 1.0 + 1e-12
        assert curve.dropped_authentic == len(h0_nans)
        assert curve.dropped_attack == len(h1_nans)
        eer = curve.equal_error_rate()
        assert -1e-12 <= eer <= 1.0 + 1e-12


class TestWifiChainInvariants:
    @settings(max_examples=5, deadline=None)
    @given(
        st.sampled_from([6, 24, 54]),
        st.binary(min_size=1, max_size=60),
    )
    def test_wifi_roundtrip_any_rate_and_payload(self, rate, psdu):
        from repro.wifi.receiver import WifiReceiver
        from repro.wifi.transmitter import WifiTransmitter

        frame = WifiTransmitter(rate_mbps=rate).transmit_psdu(psdu)
        out = WifiReceiver(rate_mbps=rate).decode_psdu(
            frame.waveform, psdu_bytes=len(psdu)
        )
        assert out.psdu == psdu

    @settings(max_examples=5, deadline=None)
    @given(st.binary(min_size=1, max_size=40))
    def test_signal_field_always_reports_truth(self, psdu):
        from repro.wifi.receiver import WifiReceiver
        from repro.wifi.transmitter import WifiTransmitter

        frame = WifiTransmitter(rate_mbps=54).transmit_psdu(psdu)
        rate, length = WifiReceiver(6).decode_signal_field(frame.waveform)
        assert (rate, length) == (54, len(psdu))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_codeword_projection_idempotent(self, seed):
        """Projecting already-legal points changes nothing; projecting
        twice equals projecting once."""
        from repro.attack.codeword import project_onto_codewords
        from repro.wifi.qam import modulation_for_name

        rng = np.random.default_rng(seed)
        table = modulation_for_name("64qam").constellation()
        desired = table[rng.integers(0, 64, 48)]
        once = project_onto_codewords(desired, rate_mbps=54)
        twice = project_onto_codewords(once.legal_points, rate_mbps=54)
        assert np.allclose(twice.legal_points, once.legal_points)
        assert twice.point_agreement == pytest.approx(1.0)


class TestPlotFuzz:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 300))
    def test_scatter_never_crashes_on_finite_input(self, seed, count):
        from repro.utils.terminal_plot import scatter_plot

        rng = np.random.default_rng(seed)
        points = rng.standard_normal(count) + 1j * rng.standard_normal(count)
        text = scatter_plot(points)
        assert isinstance(text, str) and text

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6), st.integers(2, 200))
    def test_line_plot_never_crashes(self, seed, count):
        from repro.utils.terminal_plot import line_plot

        rng = np.random.default_rng(seed)
        text = line_plot([("s", rng.standard_normal(count))])
        assert isinstance(text, str) and text


class TestWaveformInvariants:
    @settings(max_examples=10, deadline=None)
    @given(payloads)
    def test_transmit_power_near_unity(self, payload):
        waveform = ZigBeeTransmitter().transmit_payload(payload).waveform
        assert waveform.power == pytest.approx(1.0, rel=0.02)

    @settings(max_examples=5, deadline=None)
    @given(payloads)
    def test_emulated_waveform_is_whole_wifi_symbols(self, payload):
        sent = ZigBeeTransmitter().transmit_payload(payload)
        emulated = WaveformEmulationAttack().emulate(sent.waveform)
        assert len(emulated.waveform) % 80 == 0
