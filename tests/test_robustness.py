"""Failure-injection tests: malformed inputs raise clean errors.

A library boundary should never surface a numpy shape error or a silent
wrong answer: every malformed input here must either raise a
:class:`~repro.errors.ReproError` subclass or produce an explicit
"not decoded" outcome.
"""

import numpy as np
import pytest

from repro.errors import ReproError, SynchronizationError
from repro.utils.signal_ops import Waveform
from repro.zigbee.receiver import ZigBeeReceiver
from repro.zigbee.transmitter import ZigBeeTransmitter


class TestReceiverRobustness:
    def test_silence_raises_sync_error(self):
        silence = Waveform(np.zeros(5000, dtype=complex), 4e6)
        with pytest.raises(SynchronizationError):
            ZigBeeReceiver().receive(silence)

    def test_pure_noise_raises_or_fails_cleanly(self):
        rng = np.random.default_rng(0)
        noise = Waveform(
            rng.standard_normal(8000) + 1j * rng.standard_normal(8000), 4e6
        )
        receiver = ZigBeeReceiver()
        try:
            packet = receiver.receive(noise)
        except ReproError:
            return
        assert not packet.fcs_ok

    def test_dc_waveform(self):
        dc = Waveform(np.ones(8000, dtype=complex), 4e6)
        receiver = ZigBeeReceiver()
        try:
            packet = receiver.receive(dc)
        except ReproError:
            return
        assert not packet.fcs_ok

    def test_truncated_frame_fails_cleanly(self, authentic_link):
        cut = authentic_link.on_air.samples[: len(authentic_link.on_air) // 3]
        receiver = ZigBeeReceiver()
        try:
            packet = receiver.receive(Waveform(cut, 20e6))
        except ReproError:
            return
        assert not packet.fcs_ok

    def test_wrong_technology_input(self):
        """A WiFi frame at the ZigBee receiver must not decode."""
        from repro.wifi.transmitter import WifiTransmitter

        frame = WifiTransmitter(54).transmit_psdu(bytes(32))
        receiver = ZigBeeReceiver()
        try:
            packet = receiver.receive(frame.waveform)
        except ReproError:
            return
        assert not packet.fcs_ok

    def test_extreme_gain_levels_still_decode(self, authentic_link):
        """AGC-free scaling across 8 orders of magnitude."""
        receiver = ZigBeeReceiver()
        for gain in (1e-4, 1e4):
            scaled = authentic_link.on_air.with_samples(
                authentic_link.on_air.samples * gain
            )
            packet = receiver.receive(scaled)
            assert packet.fcs_ok

    def test_concatenated_frames_decode_first(self, authentic_link):
        doubled = Waveform(
            np.concatenate(
                [authentic_link.on_air.samples, authentic_link.on_air.samples]
            ),
            20e6,
        )
        packet = ZigBeeReceiver().receive(doubled)
        assert packet.fcs_ok


class TestAttackRobustness:
    def test_emulating_noise_fails_or_is_detectable(self):
        """Emulating a garbage 'observation' must not crash."""
        from repro.attack import WaveformEmulationAttack

        rng = np.random.default_rng(1)
        garbage = Waveform(
            rng.standard_normal(640) + 1j * rng.standard_normal(640), 4e6
        )
        result = WaveformEmulationAttack().emulate(garbage)
        assert result.waveform.samples.size > 0

    def test_emulating_very_short_observation(self):
        from repro.attack import WaveformEmulationAttack

        short = ZigBeeTransmitter().transmit_symbols([5]).waveform
        result = WaveformEmulationAttack().emulate(short)
        assert result.emulated_chunks.shape[1] == 80

    def test_detector_handles_constant_chips(self):
        from repro.defense.detector import CumulantDetector
        from repro.errors import ConfigurationError

        detector = CumulantDetector()
        constant = np.ones(256)
        # All-identical points have degenerate statistics but must not
        # produce a numpy warning storm or nonsense — either a clean
        # error or a finite statistic.
        try:
            result = detector.statistic(constant)
        except ConfigurationError:
            return
        assert np.isfinite(result.distance_squared)
