"""Tests for the K=7 convolutional code, puncturing, and Viterbi."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DecodingError
from repro.wifi.convcode import (
    conv_encode,
    decode_with_rate,
    depuncture,
    encode_with_rate,
    puncture,
    viterbi_decode,
)


class TestEncoder:
    def test_rate_half_output_length(self):
        assert conv_encode(np.zeros(10, dtype=np.uint8)).size == 20

    def test_all_zero_input_gives_all_zero_output(self):
        assert not conv_encode(np.zeros(64, dtype=np.uint8)).any()

    def test_impulse_response_matches_generators(self):
        # A single 1 followed by zeros emits the generator taps:
        # g0 = 133o = 1011011, g1 = 171o = 1111001.
        bits = np.zeros(7, dtype=np.uint8)
        bits[0] = 1
        coded = conv_encode(bits)
        assert list(coded[0::2]) == [1, 0, 1, 1, 0, 1, 1]
        assert list(coded[1::2]) == [1, 1, 1, 1, 0, 0, 1]

    def test_linearity(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 32).astype(np.uint8)
        b = rng.integers(0, 2, 32).astype(np.uint8)
        assert np.array_equal(
            conv_encode(a) ^ conv_encode(b), conv_encode(a ^ b)
        )


class TestPuncturing:
    def test_rate_34_keeps_two_thirds(self):
        coded = np.arange(12) % 2
        punctured = puncture(coded.astype(np.uint8), (3, 4))
        assert punctured.size == 8

    def test_rate_23_keeps_three_quarters(self):
        coded = np.zeros(16, dtype=np.uint8)
        assert puncture(coded, (2, 3)).size == 12

    def test_rate_12_identity(self):
        coded = np.array([1, 0, 1, 1], dtype=np.uint8)
        assert np.array_equal(puncture(coded, (1, 2)), coded)

    def test_depuncture_marks_erasures(self):
        coded = np.ones(6, dtype=np.uint8)
        restored = depuncture(puncture(coded, (3, 4)), (3, 4))
        assert restored.size == 6
        assert np.count_nonzero(restored == 2) == 2

    def test_rejects_unknown_rate(self):
        with pytest.raises(ConfigurationError):
            puncture(np.zeros(12, dtype=np.uint8), (5, 6))

    def test_rejects_ragged_length(self):
        with pytest.raises(ConfigurationError):
            puncture(np.zeros(7, dtype=np.uint8), (3, 4))


class TestViterbi:
    def _encode_with_tail(self, bits):
        padded = np.concatenate([bits, np.zeros(6, dtype=np.uint8)])
        return padded, conv_encode(padded)

    def test_clean_decode(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 50).astype(np.uint8)
        padded, coded = self._encode_with_tail(bits)
        decoded = viterbi_decode(coded, padded.size)
        assert np.array_equal(decoded, padded)

    def test_corrects_scattered_errors(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 60).astype(np.uint8)
        padded, coded = self._encode_with_tail(bits)
        corrupted = coded.copy()
        corrupted[[3, 25, 47, 70, 99]] ^= 1  # spaced single-bit errors
        decoded = viterbi_decode(corrupted, padded.size)
        assert np.array_equal(decoded, padded)

    def test_decodes_erasures(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 30).astype(np.uint8)
        padded, coded = self._encode_with_tail(bits)
        erased = coded.copy()
        erased[5::12] = 2
        decoded = viterbi_decode(erased, padded.size)
        assert np.array_equal(decoded, padded)

    def test_rejects_length_mismatch(self):
        with pytest.raises(DecodingError):
            viterbi_decode(np.zeros(10, dtype=np.uint8), 6)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=6, max_size=48).filter(
        lambda b: len(b) % 3 == 0))
    def test_punctured_roundtrip_property(self, bits):
        padded = np.concatenate(
            [np.array(bits, dtype=np.uint8), np.zeros(6, dtype=np.uint8)]
        )
        for rate in ((1, 2), (3, 4)):
            if (2 * padded.size) % (2 * rate[1] // 1) != 0:
                continue
            try:
                punctured = encode_with_rate(padded, rate)
            except ConfigurationError:
                continue
            decoded = decode_with_rate(punctured, rate, padded.size)
            assert np.array_equal(decoded, padded)
