"""Tests for the 802.11 scrambler and pilot polarity sequence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.wifi.scrambler import (
    descramble,
    pilot_polarity_sequence,
    scramble,
    scrambler_sequence,
)


class TestScramblerSequence:
    def test_known_prefix_all_ones_seed(self):
        # IEEE 802.11-2016: the all-ones seed generates the 127-bit
        # sequence starting 0000 1110 1111 0010 ...
        sequence = scrambler_sequence(16, seed=0x7F)
        assert list(sequence) == [0, 0, 0, 0, 1, 1, 1, 0,
                                  1, 1, 1, 1, 0, 0, 1, 0]

    def test_period_127(self):
        sequence = scrambler_sequence(254, seed=0x7F)
        assert np.array_equal(sequence[:127], sequence[127:])

    def test_full_period_balanced(self):
        sequence = scrambler_sequence(127, seed=0x7F)
        assert sequence.sum() == 64  # maximal-length LFSR property

    def test_different_seeds_differ(self):
        assert not np.array_equal(
            scrambler_sequence(64, seed=0x7F), scrambler_sequence(64, seed=0x5D)
        )

    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigurationError):
            scrambler_sequence(8, seed=0)


class TestScramble:
    def test_self_inverse(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0], dtype=np.uint8)
        assert np.array_equal(descramble(scramble(bits)), bits)

    @given(st.lists(st.integers(0, 1), max_size=300),
           st.integers(min_value=1, max_value=127))
    def test_self_inverse_property(self, bits, seed):
        array = np.array(bits, dtype=np.uint8)
        assert np.array_equal(descramble(scramble(array, seed), seed), array)


class TestPilotPolarity:
    def test_known_prefix(self):
        # p_0..p_9 = 1 1 1 1 -1 -1 -1 1 -1 -1 (standard Eq. 17-25).
        polarity = pilot_polarity_sequence()
        assert list(polarity[:10]) == [1, 1, 1, 1, -1, -1, -1, 1, -1, -1]

    def test_length_127(self):
        assert pilot_polarity_sequence().size == 127

    def test_values_plus_minus_one(self):
        assert set(np.unique(pilot_polarity_sequence())) == {-1.0, 1.0}
