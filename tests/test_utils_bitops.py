"""Unit and property tests for repro.utils.bitops."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.bitops import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    pack_nibbles,
    unpack_nibbles,
)


class TestBytesBits:
    def test_lsb_first_expansion(self):
        bits = bytes_to_bits(b"\x01")
        assert list(bits) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_msb_first_expansion(self):
        bits = bytes_to_bits(b"\x01", lsb_first=False)
        assert list(bits) == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_empty_input(self):
        assert bytes_to_bits(b"").size == 0

    def test_pack_rejects_ragged_length(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes([1, 0, 1])

    def test_pack_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            bits_to_bytes([0, 1, 2, 0, 1, 0, 1, 0])

    @given(st.binary(max_size=64))
    def test_roundtrip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_roundtrip_msb(self, data):
        bits = bytes_to_bits(data, lsb_first=False)
        assert bits_to_bytes(bits, lsb_first=False) == data


class TestIntBits:
    def test_known_value(self):
        assert list(int_to_bits(0xA7, 8)) == [1, 1, 1, 0, 0, 1, 0, 1]

    def test_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(256, 8)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            int_to_bits(-1, 8)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip(self, value):
        assert bits_to_int(int_to_bits(value, 16)) == value

    @given(st.integers(min_value=0, max_value=2**12 - 1))
    def test_roundtrip_msb(self, value):
        bits = int_to_bits(value, 12, lsb_first=False)
        assert bits_to_int(bits, lsb_first=False) == value


class TestNibbles:
    def test_low_nibble_first(self):
        assert list(unpack_nibbles(b"\xa7")) == [0x7, 0xA]

    def test_pack_rejects_odd_count(self):
        with pytest.raises(ConfigurationError):
            pack_nibbles([1, 2, 3])

    def test_pack_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            pack_nibbles([16, 0])

    @given(st.binary(max_size=32))
    def test_roundtrip(self, data):
        assert pack_nibbles(unpack_nibbles(data)) == data


class TestHammingDistance:
    def test_zero_for_identical(self):
        assert hamming_distance([1, 0, 1], [1, 0, 1]) == 0

    def test_counts_differences(self):
        assert hamming_distance([1, 1, 0, 0], [0, 1, 1, 0]) == 2

    def test_rejects_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            hamming_distance([1, 0], [1])

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    def test_symmetry(self, bits):
        other = [1 - b for b in bits]
        assert hamming_distance(bits, other) == len(bits)
        assert hamming_distance(bits, bits) == 0
