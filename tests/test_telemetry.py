"""Tests for the telemetry subsystem: spans, metrics, manifests, report."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    Histogram,
    MetricRegistry,
    SpanNode,
    Telemetry,
    build_manifest,
    get_telemetry,
    load_telemetry,
    metric_key,
    read_manifest,
    render_telemetry,
    stopwatch,
    traced,
    write_manifest,
)


@pytest.fixture(autouse=True)
def _clean_singleton():
    """Keep the process-wide singleton inert around every test."""
    singleton = get_telemetry()
    singleton.reset()
    singleton.disable()
    yield
    singleton.reset()
    singleton.disable()


class TestSpans:
    def test_nested_spans_build_a_tree(self):
        telemetry = Telemetry()
        telemetry.enable()
        with telemetry.span("outer"):
            with telemetry.span("inner"):
                pass
            with telemetry.span("inner"):
                pass
        tree = telemetry.span_tree()
        outer = tree["children"][0]
        assert outer["name"] == "outer"
        assert outer["count"] == 1
        assert outer["seconds"] >= 0
        inner = outer["children"][0]
        assert inner["name"] == "inner"
        assert inner["count"] == 2

    def test_sibling_spans_do_not_nest(self):
        telemetry = Telemetry()
        telemetry.enable()
        with telemetry.span("a"):
            pass
        with telemetry.span("b"):
            pass
        names = [c["name"] for c in telemetry.span_tree()["children"]]
        assert names == ["a", "b"]

    def test_span_pops_on_exception(self):
        telemetry = Telemetry()
        telemetry.enable()
        with pytest.raises(ValueError):
            with telemetry.span("fails"):
                raise ValueError("boom")
        # The stack unwound: a new span lands at the root again.
        with telemetry.span("after"):
            pass
        names = [c["name"] for c in telemetry.span_tree()["children"]]
        assert names == ["fails", "after"]
        assert telemetry.span_tree()["children"][0]["count"] == 1

    def test_disabled_span_is_shared_noop(self):
        telemetry = Telemetry()
        # Deliberate naked span() calls: this test pins the no-op fast
        # path, which is exactly the pattern R004 exists to flag.
        first = telemetry.span("x")  # reprolint: disable=R004
        second = telemetry.span("y")  # reprolint: disable=R004
        assert first is second  # no allocation on the fast path
        with first:
            pass
        assert telemetry.span_tree()["children"] == []

    def test_reset_clears_tree(self):
        telemetry = Telemetry()
        telemetry.enable()
        with telemetry.span("x"):
            pass
        telemetry.reset()
        assert telemetry.span_tree()["children"] == []

    def test_span_node_round_trip(self):
        telemetry = Telemetry()
        telemetry.enable()
        with telemetry.span("a"):
            with telemetry.span("b"):
                pass
        rebuilt = SpanNode.from_dict(telemetry.span_tree())
        assert rebuilt.to_dict() == telemetry.span_tree()

    def test_traced_decorator_times_calls(self):
        telemetry = get_telemetry()
        telemetry.enable()

        @traced("my.stage")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        node = telemetry.span_tree()["children"][0]
        assert node["name"] == "my.stage"
        assert node["count"] == 2

    def test_traced_passthrough_when_disabled(self):
        @traced()
        def work(x):
            return x * 2

        assert work(3) == 6
        assert get_telemetry().span_tree()["children"] == []


class TestMetrics:
    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {"b": 1, "a": 2}) == "m{a=2,b=1}"
        assert metric_key("m", {}) == "m"

    def test_counter_accumulates_per_label(self):
        registry = MetricRegistry()
        registry.counter("decisions", verdict="emulated").increment()
        registry.counter("decisions", verdict="emulated").increment(2)
        registry.counter("decisions", verdict="authentic").increment()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["decisions{verdict=emulated}"] == 3
        assert snapshot["counters"]["decisions{verdict=authentic}"] == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricRegistry().counter("c").increment(-1)

    def test_gauge_last_value_wins(self):
        registry = MetricRegistry()
        registry.gauge("g").set(1.5)
        registry.gauge("g").set(2.5)
        assert registry.snapshot()["gauges"]["g"] == 2.5

    def test_histogram_percentiles(self):
        histogram = Histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.minimum == 1.0
        assert histogram.maximum == 100.0
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.percentile(50) == pytest.approx(50.5)
        assert histogram.percentile(95) == pytest.approx(95.05)
        assert histogram.percentile(99) == pytest.approx(99.01)
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 100.0

    def test_histogram_reservoir_stays_bounded(self):
        histogram = Histogram("h", reservoir_size=64)
        for value in range(10_000):
            histogram.observe(float(value))
        assert histogram.count == 10_000
        assert len(histogram._reservoir) == 64
        # The sampled median should still be in the right neighbourhood.
        assert 2_000 < histogram.percentile(50) < 8_000

    def test_empty_histogram_raises(self):
        with pytest.raises(ConfigurationError):
            Histogram("h").percentile(50)

    def test_csv_export(self):
        registry = MetricRegistry()
        registry.counter("packets", kind="sent").increment(5)
        registry.gauge("snr").set(7.0)
        registry.histogram("latency").observe(1.0)
        csv_text = registry.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "kind,key,field,value"
        assert any("packets" in line and ",5" in line for line in lines)
        assert any(line.startswith("histogram,latency,p99") for line in lines)

    def test_disabled_telemetry_records_nothing(self):
        telemetry = Telemetry()
        telemetry.count("c")
        telemetry.set_gauge("g", 1.0)
        telemetry.observe("h", 1.0)
        snapshot = telemetry.snapshot()
        assert snapshot["metrics"]["counters"] == {}
        assert snapshot["metrics"]["gauges"] == {}
        assert snapshot["metrics"]["histograms"] == {}


class TestDeterministicReservoir:
    def test_identical_streams_build_identical_reservoirs(self):
        first = Histogram("latency", reservoir_size=64)
        second = Histogram("latency", reservoir_size=64)
        values = [float((i * 37) % 997) for i in range(1500)]
        for value in values:
            first.observe(value)
            second.observe(value)
        assert first.dump_state() == second.dump_state()
        assert first.summary() == second.summary()

    def test_overflow_replacement_is_hash_driven(self):
        histogram = Histogram("latency", reservoir_size=32)
        for i in range(400):
            histogram.observe(float(i))
        state = histogram.dump_state()
        assert state["count"] == 400
        assert len(state["reservoir"]) == 32
        # Replacement happened: the reservoir is no longer just 0..31.
        assert any(value >= 32 for value in state["reservoir"])
        # And it is reproducible from scratch.
        replay = Histogram("latency", reservoir_size=32)
        for i in range(400):
            replay.observe(float(i))
        assert replay.dump_state() == state

    def test_percentiles_stable_across_serial_and_merged_runs(self):
        """p50/p95/p99 match when the same stream arrives via merge."""
        serial = Histogram("latency", reservoir_size=256)
        values = [float((i * 13) % 101) for i in range(200)]
        for value in values:
            serial.observe(value)
        sharded = Histogram("latency", reservoir_size=256)
        for start in range(0, 200, 50):
            worker = Histogram("latency", reservoir_size=256)
            for value in values[start:start + 50]:
                worker.observe(value)
            sharded.merge_state(worker.dump_state())
        assert sharded.summary() == serial.summary()


class TestStopwatch:
    def test_stopwatch_measures_elapsed_seconds(self):
        import time

        with stopwatch() as timer:
            time.sleep(0.02)
        assert timer.seconds >= 0.01

    def test_stopwatch_starts_at_zero_and_is_reusable(self):
        timer = stopwatch()
        assert timer.seconds == 0.0
        with timer:
            pass
        assert timer.seconds >= 0.0
        with timer:
            sum(range(1000))
        assert timer.seconds >= 0.0


class TestManifest:
    def test_build_manifest_carries_provenance(self):
        manifest = build_manifest(seed=7, config={"experiment": "table2"})
        assert manifest["seed"] == 7
        assert manifest["config"]["experiment"] == "table2"
        assert manifest["package"] == "repro"
        import repro

        assert manifest["package_version"] == repro.__version__
        assert "python" in manifest["host"]
        assert "hostname" in manifest["host"]

    def test_manifest_file_round_trip(self, tmp_path):
        manifest = build_manifest(seed=3, span_tree={"name": "run",
                                                     "count": 0,
                                                     "seconds": 0.0,
                                                     "children": []})
        path = tmp_path / "run.manifest.json"
        write_manifest(path, manifest)
        loaded = read_manifest(path)
        assert loaded == manifest

    def test_read_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ConfigurationError):
            read_manifest(path)

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_manifest(tmp_path / "nope.json")


class TestPipelineInstrumentation:
    def test_attack_and_defense_spans_recorded(self):
        import numpy as np

        from repro.attack import WaveformEmulationAttack
        from repro.defense import CumulantDetector
        from repro.zigbee.transmitter import ZigBeeTransmitter

        telemetry = get_telemetry()
        telemetry.enable()
        observed = ZigBeeTransmitter().transmit_payload(b"hi").waveform
        WaveformEmulationAttack().emulate(observed)
        rng = np.random.default_rng(0)
        chips = 2.0 * rng.integers(0, 2, 512) - 1.0
        CumulantDetector().statistic(chips)
        telemetry.disable()

        names = {c["name"] for c in telemetry.span_tree()["children"]}
        assert "attack.emulate" in names
        assert "defense.detect" in names
        attack = next(c for c in telemetry.span_tree()["children"]
                      if c["name"] == "attack.emulate")
        child_names = {c["name"] for c in attack["children"]}
        assert {"attack.interpolate", "attack.quantize"} <= child_names
        counters = telemetry.snapshot()["metrics"]["counters"]
        assert counters["attack.emulations{mode=baseband}"] == 1
        assert sum(v for k, v in counters.items()
                   if k.startswith("detector.decisions")) == 1

    def test_pipeline_untouched_when_disabled(self):
        from repro.attack import WaveformEmulationAttack
        from repro.zigbee.transmitter import ZigBeeTransmitter

        telemetry = get_telemetry()
        observed = ZigBeeTransmitter().transmit_payload(b"hi").waveform
        result = WaveformEmulationAttack().emulate(observed)
        assert result.scale > 0
        assert telemetry.span_tree()["children"] == []
        assert telemetry.snapshot()["metrics"]["counters"] == {}


class TestRenderAndLoad:
    def test_render_contains_tree_and_metrics(self):
        telemetry = Telemetry()
        telemetry.enable()
        with telemetry.span("stage.a"):
            with telemetry.span("stage.b"):
                pass
        telemetry.count("events", kind="x")
        telemetry.observe("values", 1.0)
        payload = telemetry.snapshot()
        payload["manifest"] = build_manifest(seed=1)
        text = render_telemetry(payload)
        assert "stage.a" in text
        assert "stage.b" in text
        assert "events{kind=x}" in text
        assert "p95" in text
        assert "seed: 1" in text

    def test_load_telemetry_round_trip(self, tmp_path):
        telemetry = Telemetry()
        telemetry.enable()
        with telemetry.span("s"):
            pass
        path = tmp_path / "t.json"
        path.write_text(json.dumps(telemetry.snapshot()))
        loaded = load_telemetry(path)
        assert loaded["spans"]["children"][0]["name"] == "s"

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(ConfigurationError):
            load_telemetry(path)

    def test_render_empty_payload(self):
        text = render_telemetry(Telemetry().snapshot())
        assert "no spans" in text
