"""Tests for energy-detection CCA and the CSMA/CA sender."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.link.csma import BackoffOutcome, CsmaSender, EnergyDetector
from repro.utils.signal_ops import Waveform


def _medium(busy_regions, n=100000, rate=4e6, level=1.0):
    samples = np.zeros(n, dtype=complex)
    for start, stop in busy_regions:
        samples[start:stop] = level
    return Waveform(samples, rate)


class TestEnergyDetector:
    def test_idle_channel_is_idle(self):
        detector = EnergyDetector(threshold_db=-15.0)
        result = detector.assess(_medium([]))
        assert not result.busy

    def test_strong_signal_is_busy(self):
        detector = EnergyDetector(threshold_db=-15.0)
        result = detector.assess(_medium([(0, 100000)]))
        assert result.busy
        assert result.energy_db == pytest.approx(0.0, abs=0.1)

    def test_window_scaling_with_rate(self):
        detector = EnergyDetector(window_s=128e-6)
        assert detector.window_samples(4e6) == 512
        assert detector.window_samples(20e6) == 2560

    def test_busy_fraction(self):
        detector = EnergyDetector(threshold_db=-15.0)
        # Busy for the first half of the trace.
        medium = _medium([(0, 50000)])
        fraction = detector.busy_fraction(medium)
        assert fraction == pytest.approx(0.5, abs=0.05)

    def test_rejects_empty_window(self):
        detector = EnergyDetector()
        with pytest.raises(ConfigurationError):
            detector.assess(_medium([]), start=10**9)

    def test_detects_real_zigbee_frame(self, authentic_link):
        """The attacker can sense nearby ZigBee activity (ref [20])."""
        detector = EnergyDetector(threshold_db=-15.0)
        busy = detector.assess(authentic_link.on_air, start=600)
        assert busy.busy


class TestCsmaSender:
    def test_transmits_on_idle_medium(self):
        sender = CsmaSender(rng=0)
        outcome = sender.attempt(_medium([]))
        assert outcome.transmitted
        assert outcome.attempts == 1

    def test_defers_on_busy_medium(self):
        sender = CsmaSender(rng=1, max_attempts=3)
        outcome = sender.attempt(_medium([(0, 100000)]))
        assert not outcome.transmitted
        assert outcome.attempts == 3
        assert all(a.busy for a in outcome.assessments)

    def test_waits_out_a_busy_head(self):
        # Busy only for the first 10 ms; the sender's backoff eventually
        # lands in the idle tail.
        medium = _medium([(0, 40000)], n=400000)
        sender = CsmaSender(rng=2, max_attempts=10)
        outcome = sender.attempt(medium)
        assert outcome.transmitted
        assert outcome.total_backoff_s > 0

    def test_backoff_time_accumulates(self):
        sender = CsmaSender(rng=3, max_attempts=4)
        outcome = sender.attempt(_medium([(0, 100000)]))
        assert outcome.total_backoff_s >= 4 * sender.detector.window_s - 1e-9

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            CsmaSender(max_attempts=0)
        with pytest.raises(ConfigurationError):
            CsmaSender(min_exponent=5, max_exponent=3)
