"""Tests for OFDM subcarrier mapping, IFFT/CP assembly, and preamble."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wifi.constants import (
    CP_LENGTH,
    DATA_SUBCARRIERS,
    FFT_SIZE,
    PILOT_SUBCARRIERS,
    SYMBOL_LENGTH,
    logical_to_fft_index,
)
from repro.wifi.ofdm import (
    assemble_symbols,
    extract_data_subcarriers,
    map_subcarriers,
    ofdm_demodulate_symbol,
    ofdm_modulate_bins,
    split_symbols,
)
from repro.wifi.preamble import (
    long_training_field,
    parse_signal_field,
    short_training_field,
    signal_field_bits,
    signal_field_waveform,
)


class TestSubcarrierMaps:
    def test_data_subcarrier_count(self):
        assert len(DATA_SUBCARRIERS) == 48

    def test_pilots_not_in_data(self):
        assert not set(PILOT_SUBCARRIERS) & set(DATA_SUBCARRIERS)

    def test_dc_unused(self):
        assert 0 not in DATA_SUBCARRIERS

    def test_paper_overlap_band_is_data(self):
        # The ZigBee-carrying subcarriers [-20, -8] are all data.
        assert all(k in DATA_SUBCARRIERS for k in range(-20, -7))

    def test_logical_index_wrapping(self):
        assert logical_to_fft_index(0) == 0
        assert logical_to_fft_index(1) == 1
        assert logical_to_fft_index(-1) == 63
        assert logical_to_fft_index(-26) == 38


class TestMapping:
    def test_map_and_extract_roundtrip(self):
        rng = np.random.default_rng(0)
        points = rng.standard_normal(48) + 1j * rng.standard_normal(48)
        bins = map_subcarriers(points, symbol_index=3)
        assert np.allclose(extract_data_subcarriers(bins), points)

    def test_pilots_present(self):
        bins = map_subcarriers(np.zeros(48, dtype=complex), symbol_index=0)
        pilot_bins = [bins[logical_to_fft_index(k)] for k in PILOT_SUBCARRIERS]
        assert all(abs(b) == 1.0 for b in pilot_bins)

    def test_nulls_are_zero(self):
        bins = map_subcarriers(np.ones(48, dtype=complex), include_pilots=False)
        for k in range(27, 38):  # guard band bins
            assert bins[k] == 0
        assert bins[0] == 0  # DC

    def test_rejects_wrong_count(self):
        with pytest.raises(ConfigurationError):
            map_subcarriers(np.zeros(47, dtype=complex))


class TestOfdmSymbol:
    def test_symbol_length(self):
        bins = np.zeros(FFT_SIZE, dtype=complex)
        bins[1] = 1.0
        assert ofdm_modulate_bins(bins).size == SYMBOL_LENGTH

    def test_cyclic_prefix_is_copy_of_tail(self):
        rng = np.random.default_rng(1)
        bins = rng.standard_normal(FFT_SIZE) + 1j * rng.standard_normal(FFT_SIZE)
        symbol = ofdm_modulate_bins(bins)
        assert np.allclose(symbol[:CP_LENGTH], symbol[-CP_LENGTH:])

    def test_modulate_demodulate_roundtrip(self):
        rng = np.random.default_rng(2)
        bins = rng.standard_normal(FFT_SIZE) + 1j * rng.standard_normal(FFT_SIZE)
        assert np.allclose(ofdm_demodulate_symbol(ofdm_modulate_bins(bins)), bins)

    def test_assemble_multiple_symbols(self):
        rng = np.random.default_rng(3)
        points = rng.standard_normal(96) + 1j * rng.standard_normal(96)
        waveform = assemble_symbols(points)
        assert waveform.size == 2 * SYMBOL_LENGTH
        rows = split_symbols(waveform)
        assert rows.shape == (2, SYMBOL_LENGTH)
        recovered = extract_data_subcarriers(ofdm_demodulate_symbol(rows[0]))
        assert np.allclose(recovered, points[:48])

    def test_split_rejects_short_waveform(self):
        with pytest.raises(ConfigurationError):
            split_symbols(np.zeros(79, dtype=complex))


class TestPreamble:
    def test_stf_length_and_periodicity(self):
        stf = short_training_field()
        assert stf.size == 160
        assert np.allclose(stf[:16], stf[16:32])

    def test_ltf_length_and_structure(self):
        ltf = long_training_field()
        assert ltf.size == 160
        assert np.allclose(ltf[32:96], ltf[96:160])

    def test_signal_field_roundtrip(self):
        bits = signal_field_bits(54, 100)
        rate, length = parse_signal_field(bits)
        assert (rate, length) == (54, 100)

    def test_signal_field_parity(self):
        bits = signal_field_bits(6, 4095)
        assert int(bits[:18].sum()) % 2 == 0

    def test_signal_waveform_length(self):
        assert signal_field_waveform(54, 40).size == SYMBOL_LENGTH

    def test_signal_rejects_bad_length(self):
        with pytest.raises(ConfigurationError):
            signal_field_bits(54, 0)

    def test_parse_rejects_bad_parity(self):
        bits = signal_field_bits(54, 100)
        bits[17] ^= 1
        with pytest.raises(ConfigurationError):
            parse_signal_field(bits)
