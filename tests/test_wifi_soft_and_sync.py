"""Tests for soft-decision demapping/Viterbi and OFDM synchronization."""

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel
from repro.errors import ConfigurationError, DecodingError, SynchronizationError
from repro.utils.signal_ops import Waveform, frequency_shift
from repro.wifi.convcode import conv_encode, encode_with_rate
from repro.wifi.qam import modulation_for_name
from repro.wifi.receiver import WifiReceiver
from repro.wifi.softdemap import (
    depuncture_soft,
    soft_demodulate,
    viterbi_decode_soft,
)
from repro.wifi.sync import WifiSynchronizer
from repro.wifi.transmitter import WifiTransmitter


class TestSoftDemap:
    @pytest.mark.parametrize("name", ["bpsk", "qpsk", "16qam", "64qam"])
    def test_llr_signs_match_hard_decisions(self, name):
        modulation = modulation_for_name(name)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 30 * modulation.bits_per_symbol).astype(np.uint8)
        points = modulation.modulate(bits)
        llrs = soft_demodulate(points, modulation)
        # Positive LLR means bit 0: sign must encode the transmitted bit.
        hard_from_llr = (llrs < 0).astype(np.uint8)
        assert np.array_equal(hard_from_llr, bits)

    def test_magnitude_reflects_reliability(self):
        modulation = modulation_for_name("qpsk")
        clean = modulation.modulate(np.array([0, 0], dtype=np.uint8))
        borderline = clean * 0.05  # nearly at the decision boundary
        llr_clean = soft_demodulate(clean, modulation)
        llr_borderline = soft_demodulate(borderline, modulation)
        assert np.all(np.abs(llr_clean) > np.abs(llr_borderline))

    def test_rejects_bad_noise_variance(self):
        modulation = modulation_for_name("qpsk")
        with pytest.raises(ConfigurationError):
            soft_demodulate(np.ones(2, dtype=complex), modulation, noise_variance=0)


class TestSoftViterbi:
    def _frame(self, n=60, seed=1):
        rng = np.random.default_rng(seed)
        bits = np.concatenate(
            [rng.integers(0, 2, n).astype(np.uint8), np.zeros(6, dtype=np.uint8)]
        )
        return bits

    def test_clean_decode_from_hard_llrs(self):
        bits = self._frame()
        coded = conv_encode(bits)
        llrs = 1.0 - 2.0 * coded.astype(np.float64)  # bit0 -> +1, bit1 -> -1
        decoded = viterbi_decode_soft(llrs, bits.size)
        assert np.array_equal(decoded, bits)

    def test_weak_llrs_are_outvoted(self):
        """A few near-zero (unreliable, wrong-sign) LLRs get corrected."""
        bits = self._frame()
        coded = conv_encode(bits)
        llrs = 1.0 - 2.0 * coded.astype(np.float64)
        llrs[[4, 20, 57]] *= -0.05  # wrong sign but tiny confidence
        decoded = viterbi_decode_soft(llrs, bits.size)
        assert np.array_equal(decoded, bits)

    def test_soft_depuncture_inserts_zeros(self):
        llrs = np.ones(4, dtype=np.float64)
        full = depuncture_soft(llrs, (3, 4))
        assert full.size == 6
        assert np.count_nonzero(full == 0.0) == 2

    def test_soft_beats_hard_at_low_snr(self):
        """The canonical ~2 dB soft-decision gain, measured end to end."""
        psdu = bytes(range(50))
        frame = WifiTransmitter(54).transmit_psdu(psdu)
        hard_ok = soft_ok = 0
        for i in range(12):
            noisy = AwgnChannel(16.5, rng=i, normalize=False).apply(frame.waveform)
            hard = WifiReceiver(54).decode_psdu(noisy, len(psdu))
            soft = WifiReceiver(54, soft_decision=True).decode_psdu(noisy, len(psdu))
            hard_ok += hard.psdu == psdu
            soft_ok += soft.psdu == psdu
        assert soft_ok > hard_ok

    def test_rejects_length_mismatch(self):
        with pytest.raises(DecodingError):
            viterbi_decode_soft(np.zeros(10), 6)


class TestWifiSynchronizer:
    @pytest.fixture(scope="class")
    def frame(self):
        return WifiTransmitter(54).transmit_psdu(bytes(range(40)))

    def _padded(self, frame, lead=250):
        samples = np.concatenate(
            [np.zeros(lead, dtype=complex), frame.waveform.samples,
             np.zeros(100, dtype=complex)]
        )
        return Waveform(samples, 20e6)

    def test_exact_timing(self, frame):
        sync = WifiSynchronizer().synchronize(self._padded(frame, lead=421))
        assert sync.frame_start == 421
        assert sync.metric > 0.9

    def test_cfo_estimation(self, frame):
        padded = self._padded(frame)
        shifted = padded.with_samples(
            frequency_shift(padded.samples, 55e3, 20e6)
        )
        sync = WifiSynchronizer().synchronize(shifted)
        assert sync.cfo_hz == pytest.approx(55e3, rel=0.05)

    def test_decode_after_sync_with_noise_and_cfo(self, frame):
        padded = self._padded(frame, lead=137)
        impaired = padded.with_samples(
            frequency_shift(padded.samples, -30e3, 20e6)
        )
        noisy = AwgnChannel(22, rng=5, normalize=False).apply(impaired)
        result = WifiReceiver(54).receive(noisy, psdu_bytes=40)
        assert result.psdu == bytes(range(40))

    def test_noise_only_raises(self):
        rng = np.random.default_rng(0)
        noise = 0.1 * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000))
        with pytest.raises(SynchronizationError):
            WifiSynchronizer().synchronize(Waveform(noise, 20e6))

    def test_rejects_wrong_rate(self, frame):
        wrong = Waveform(frame.waveform.samples, 4e6)
        with pytest.raises(ConfigurationError):
            WifiSynchronizer().synchronize(wrong)


class TestBlindReception:
    def _padded(self, frame, lead=300):
        samples = np.concatenate(
            [np.zeros(lead, dtype=complex), frame.waveform.samples,
             np.zeros(120, dtype=complex)]
        )
        return Waveform(samples, 20e6)

    @pytest.mark.parametrize("rate", [6, 12, 24, 48, 54])
    def test_receive_any_learns_rate_and_length(self, rate):
        from repro.wifi.receiver import receive_any

        psdu = bytes((3 * i + rate) % 256 for i in range(41))
        frame = WifiTransmitter(rate_mbps=rate).transmit_psdu(psdu)
        out = receive_any(self._padded(frame))
        assert out.psdu == psdu

    def test_signal_field_decode(self):
        frame = WifiTransmitter(rate_mbps=36).transmit_psdu(bytes(77))
        receiver = WifiReceiver(rate_mbps=6)
        rate, length = receiver.decode_signal_field(frame.waveform)
        assert (rate, length) == (36, 77)

    def test_receive_any_with_noise_and_cfo(self):
        from repro.wifi.receiver import receive_any

        psdu = bytes(range(50))
        frame = WifiTransmitter(rate_mbps=54).transmit_psdu(psdu)
        padded = self._padded(frame, lead=199)
        impaired = padded.with_samples(
            frequency_shift(padded.samples, 25e3, 20e6)
        )
        noisy = AwgnChannel(24, rng=3, normalize=False).apply(impaired)
        out = receive_any(noisy)
        assert out.psdu == psdu
