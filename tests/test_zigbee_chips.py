"""Tests for the 802.15.4 chip table generation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.zigbee.chips import chip_table, chips_for_symbol, min_pairwise_chip_distance
from repro.zigbee.constants import CHIPS_PER_SYMBOL, NUM_SYMBOLS, SYMBOL0_CHIPS

#: Rows of the published standard table (IEEE 802.15.4-2011, Table 73)
#: used as independent ground truth for the generator.
STANDARD_ROWS = {
    0: "11011001110000110101001000101110",
    1: "11101101100111000011010100100010",
    2: "00101110110110011100001101010010",
    5: "00110101001000101110110110011100",
    7: "10011100001101010010001011101101",
    8: "10001100100101100000011101111011",
}


class TestChipTable:
    def test_shape_and_dtype(self):
        table = chip_table()
        assert table.shape == (NUM_SYMBOLS, CHIPS_PER_SYMBOL)
        assert table.dtype == np.uint8

    def test_read_only(self):
        with pytest.raises(ValueError):
            chip_table()[0, 0] = 1

    @pytest.mark.parametrize("symbol,expected", sorted(STANDARD_ROWS.items()))
    def test_matches_published_standard(self, symbol, expected):
        row = "".join(str(c) for c in chips_for_symbol(symbol))
        assert row == expected

    def test_symbols_1_to_7_are_cyclic_shifts(self):
        table = chip_table()
        for symbol in range(1, 8):
            assert np.array_equal(table[symbol], np.roll(table[0], 4 * symbol))

    def test_symbols_8_to_15_are_conjugated_shifts(self):
        table = chip_table()
        conjugated = SYMBOL0_CHIPS.copy()
        conjugated[1::2] ^= 1
        for symbol in range(8, 16):
            expected = np.roll(conjugated, 4 * (symbol - 8))
            assert np.array_equal(table[symbol], expected)

    def test_all_sequences_distinct(self):
        table = chip_table()
        rows = {tuple(row) for row in table}
        assert len(rows) == NUM_SYMBOLS

    def test_minimum_pairwise_distance(self):
        # The standard table's minimum inter-sequence Hamming distance is
        # 12, which bounds the DSSS error tolerance.
        assert min_pairwise_chip_distance() == 12

    def test_balanced_chips(self):
        # Every PN sequence is approximately balanced (16 +/- 2 ones).
        table = chip_table()
        ones = table.sum(axis=1)
        assert ones.min() >= 14 and ones.max() <= 18

    def test_rejects_invalid_symbol(self):
        with pytest.raises(ConfigurationError):
            chips_for_symbol(16)
        with pytest.raises(ConfigurationError):
            chips_for_symbol(-1)
