"""Engine fault tolerance: isolation, retries, pool-crash recovery."""

import os

import pytest

from repro.errors import ConfigurationError, TrialExecutionError
from repro.experiments import engine as engine_module
from repro.experiments.engine import FAULT_EVERY_ENV, MonteCarloEngine
from repro.telemetry import get_telemetry


def _draw_trial(context, args, rng):
    """Deterministic per-seed value; the bit-identity reference."""
    (scale,) = args
    return float(rng.normal()) * scale


def _failing_trial(context, args, rng):
    raise ValueError("always broken")


def _interrupt_trial(context, args, rng):
    raise KeyboardInterrupt


@pytest.fixture(autouse=True)
def _clean_fault_drill(monkeypatch):
    """Isolate each test from the process-wide fault-drill state."""
    monkeypatch.delenv(FAULT_EVERY_ENV, raising=False)
    engine_module._FAULTED_SEEDS.clear()
    yield
    engine_module._FAULTED_SEEDS.clear()


def _serial_baseline(count=10, rng=5, scale=1.5):
    with MonteCarloEngine().session({}) as session:
        return session.run(_draw_trial, count, rng=rng, static_args=(scale,))


class _FakeFuture:
    """Runs the chunk eagerly in-process; optionally reports a crash."""

    def __init__(self, fn, args, crash):
        self._crash = crash
        self._value = None if crash else fn(*args)

    def result(self):
        if self._crash:
            raise engine_module.BrokenProcessPool("simulated worker death")
        return self._value


class _FakePool:
    """ProcessPoolExecutor stand-in executing chunks in-process.

    The first ``crash_pools`` instances complete only their first
    submitted chunk and report every later chunk as lost to a
    ``BrokenProcessPool`` — the shape of a worker OOM kill mid-sweep.
    Subclass per test so the instance/crash counters start fresh.
    """

    crash_pools = 0

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        if initializer is not None:
            initializer(*initargs)
        cls = type(self)
        if not hasattr(cls, "instances"):
            cls.instances = []
        self.crashing = len(cls.instances) < cls.crash_pools
        cls.instances.append(self)
        self.futures = []
        self.shutdown_kwargs = None

    def submit(self, fn, *args):
        crash = self.crashing and len(self.futures) >= 1
        future = _FakeFuture(fn, args, crash)
        self.futures.append(future)
        return future

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_kwargs = {"wait": wait, "cancel_futures": cancel_futures}


class TestTrialIsolation:
    def test_raise_policy_surfaces_structured_failure(self):
        with MonteCarloEngine().session({}) as session:
            with pytest.raises(TrialExecutionError) as excinfo:
                session.run(_failing_trial, 3, rng=1)
        failure = excinfo.value.failure
        assert failure.trial_index == 0
        assert failure.exception_type == "ValueError"
        assert failure.attempts == 1
        assert "always broken" in failure.message
        assert "ValueError" in failure.traceback
        # The rendered error carries the original traceback text.
        assert "original traceback" in str(excinfo.value)

    def test_skip_policy_records_failures_and_none_slots(self):
        engine = MonteCarloEngine(on_error="skip")
        with engine.session({}) as session:
            results = session.run(_failing_trial, 5, rng=1)
            assert results == [None] * 5
            assert [f.trial_index for f in session.failures] == list(range(5))
            assert {f.exception_type for f in session.failures} == {"ValueError"}
            # The session stays usable after recorded failures.
            assert session.run(_draw_trial, 3, rng=2, static_args=(1.0,)) == \
                _serial_baseline(count=3, rng=2, scale=1.0)

    def test_skip_policy_parallel_matches_serial_accounting(self):
        engine = MonteCarloEngine(workers=2, chunk_size=2, on_error="skip")
        with engine.session({}) as session:
            results = session.run(_failing_trial, 5, rng=1)
            assert results == [None] * 5
            assert [f.trial_index for f in session.failures] == list(range(5))

    def test_keyboard_interrupt_is_not_isolated(self):
        engine = MonteCarloEngine(on_error="skip")
        with engine.session({}) as session:
            with pytest.raises(KeyboardInterrupt):
                session.run(_interrupt_trial, 2, rng=1)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloEngine(on_error="ignore")
        with pytest.raises(ConfigurationError):
            MonteCarloEngine(max_retries=-1)


class TestRetry:
    def test_retry_recovers_transient_faults_bit_identically(self, monkeypatch):
        baseline = _serial_baseline()
        monkeypatch.setenv(FAULT_EVERY_ENV, "1")

        engine_module._FAULTED_SEEDS.clear()
        engine = MonteCarloEngine(on_error="retry")
        with engine.session({}) as session:
            assert session.run(_draw_trial, 10, rng=5,
                               static_args=(1.5,)) == baseline

        engine_module._FAULTED_SEEDS.clear()
        engine = MonteCarloEngine(workers=2, chunk_size=3, on_error="retry")
        with engine.session({}) as session:
            assert session.run(_draw_trial, 10, rng=5,
                               static_args=(1.5,)) == baseline

    def test_retry_exhaustion_raises_with_attempt_count(self):
        engine = MonteCarloEngine(on_error="retry", max_retries=2)
        with engine.session({}) as session:
            with pytest.raises(TrialExecutionError) as excinfo:
                session.run(_failing_trial, 2, rng=1)
        assert excinfo.value.failure.attempts == 3

    def test_retry_and_failure_counters(self, monkeypatch):
        monkeypatch.setenv(FAULT_EVERY_ENV, "1")
        engine_module._FAULTED_SEEDS.clear()
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()
        try:
            engine = MonteCarloEngine(on_error="retry")
            with engine.session({}) as session:
                session.run(_draw_trial, 5, rng=5, static_args=(1.0,))
            counters = telemetry.registry.counters
            assert counters["engine.retries"].value == 5
            assert "engine.trial_failures" not in counters
        finally:
            telemetry.disable()
            telemetry.reset()

    def test_exhausted_failures_counted_by_type(self):
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()
        try:
            engine = MonteCarloEngine(on_error="skip")
            with engine.session({}) as session:
                session.run(_failing_trial, 3, rng=1)
            counters = telemetry.registry.counters
            assert counters["engine.trial_failures"].value == 3
            assert counters["engine.trial_failures{type=ValueError}"].value == 3
        finally:
            telemetry.disable()
            telemetry.reset()


class TestPoolCrashRecovery:
    def test_completed_chunks_survive_a_pool_crash(self, monkeypatch):
        baseline = _serial_baseline()

        class Pool(_FakePool):
            crash_pools = 1
            instances = []

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", Pool)
        engine = MonteCarloEngine(workers=2, chunk_size=3)
        with engine.session({}) as session:
            results = session.run(_draw_trial, 10, rng=5, static_args=(1.5,))
            assert session.pool_rebuilds == 1
        assert results == baseline
        assert not engine.used_fallback
        # 10 trials in chunks of 3 -> 4 chunks; the first pool completed
        # one before dying, so the rebuilt pool sees exactly the 3 lost.
        assert len(Pool.instances) == 2
        assert len(Pool.instances[0].futures) == 4
        assert len(Pool.instances[1].futures) == 3

    def test_second_crash_degrades_to_sequential(self, monkeypatch):
        baseline = _serial_baseline()

        class Pool(_FakePool):
            crash_pools = 2
            instances = []

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", Pool)
        engine = MonteCarloEngine(workers=2, chunk_size=3)
        with engine.session({}) as session:
            results = session.run(_draw_trial, 10, rng=5, static_args=(1.5,))
            again = session.run(_draw_trial, 10, rng=5, static_args=(1.5,))
        assert results == baseline
        assert again == baseline
        assert engine.used_fallback
        # No third pool: after the rebuilt pool died too, the session
        # stopped trusting pools for its remaining runs.
        assert len(Pool.instances) == 2

    def test_crash_recovery_with_skip_keeps_failure_accounting(self, monkeypatch):
        class Pool(_FakePool):
            crash_pools = 1
            instances = []

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", Pool)
        engine = MonteCarloEngine(workers=2, chunk_size=2, on_error="skip")
        with engine.session({}) as session:
            results = session.run(_failing_trial, 6, rng=1)
            assert results == [None] * 6
            assert [f.trial_index for f in session.failures] == list(range(6))

    def test_close_cancels_queued_futures(self, monkeypatch):
        class Pool(_FakePool):
            instances = []

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", Pool)
        engine = MonteCarloEngine(workers=2, chunk_size=5)
        session = engine.session({})
        session.run(_draw_trial, 4, rng=1, static_args=(1.0,))
        session.close()
        assert Pool.instances[0].shutdown_kwargs == {
            "wait": True, "cancel_futures": True,
        }


class TestSequentialFallbackPolicies:
    def _break_pool_creation(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no process spawning in this sandbox")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", broken_pool)

    def test_fallback_honors_skip(self, monkeypatch):
        self._break_pool_creation(monkeypatch)
        engine = MonteCarloEngine(workers=4, on_error="skip")
        with engine.session({}) as session:
            results = session.run(_failing_trial, 4, rng=1)
            assert results == [None] * 4
            assert len(session.failures) == 4
        assert engine.used_fallback

    def test_fallback_retry_matches_serial(self, monkeypatch):
        baseline = _serial_baseline()
        self._break_pool_creation(monkeypatch)
        monkeypatch.setenv(FAULT_EVERY_ENV, "1")
        engine_module._FAULTED_SEEDS.clear()
        engine = MonteCarloEngine(workers=4, on_error="retry")
        with engine.session({}) as session:
            assert session.run(_draw_trial, 10, rng=5,
                               static_args=(1.5,)) == baseline
        assert engine.used_fallback


class TestWorkerSizing:
    def test_auto_resolves_to_host_cpu_count(self):
        assert MonteCarloEngine(workers="auto").workers == (os.cpu_count() or 1)

    def test_other_strings_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloEngine(workers="many")

    def test_oversubscription_warns_once_per_pool(self, monkeypatch):
        class Pool(_FakePool):
            instances = []

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", Pool)
        engine = MonteCarloEngine(workers=(os.cpu_count() or 1) + 1)
        with pytest.warns(RuntimeWarning, match="exceeds the host"):
            with engine.session({}) as session:
                session.run(_draw_trial, 2, rng=1, static_args=(1.0,))
