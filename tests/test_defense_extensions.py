"""Tests for the defense extensions: ROC, sequential test, 6th-order."""

import numpy as np
import pytest

from repro.defense.features import (
    QPSK_C63,
    estimate_sixth_order,
    extended_feature,
    theoretical_sixth_order,
)
from repro.defense.roc import roc_curve
from repro.defense.sequential import (
    SequentialDecision,
    SequentialDetector,
    SequentialState,
)
from repro.errors import ConfigurationError


class TestRoc:
    def test_separated_populations_give_auc_one(self):
        curve = roc_curve([0.01, 0.02, 0.03], [1.0, 1.5, 2.0])
        assert curve.auc == pytest.approx(1.0, abs=1e-6)
        assert curve.equal_error_rate() == pytest.approx(0.0, abs=1e-6)

    def test_identical_populations_give_auc_half(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(0, 1, 500)
        curve = roc_curve(scores, scores)
        assert curve.auc == pytest.approx(0.5, abs=0.05)

    def test_rates_monotone_in_threshold(self):
        rng = np.random.default_rng(1)
        curve = roc_curve(rng.normal(0, 1, 200), rng.normal(2, 1, 200))
        assert np.all(np.diff(curve.true_positive_rates) >= -1e-12)
        assert np.all(np.diff(curve.false_positive_rates) >= -1e-12)

    def test_threshold_for_fpr(self):
        curve = roc_curve([0.1, 0.2], [1.0, 2.0])
        threshold = curve.threshold_for_fpr(0.0)
        assert threshold > 0.2

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            roc_curve([], [1.0])

    def test_nan_scores_are_dropped_not_poisoning(self):
        # Regression: one NaN (e.g. mean_or_nan over an all-failed
        # point) used to make every threshold NaN, silently collapsing
        # TPR/FPR to 0 across the whole curve.
        clean = roc_curve([0.01, 0.02, 0.03], [1.0, 1.5, 2.0])
        dirty = roc_curve(
            [0.01, 0.02, 0.03, float("nan")],
            [1.0, float("nan"), 1.5, 2.0],
        )
        assert dirty.dropped_authentic == 1
        assert dirty.dropped_attack == 1
        assert not np.isnan(dirty.thresholds).any()
        assert np.array_equal(dirty.true_positive_rates,
                              clean.true_positive_rates)
        assert np.array_equal(dirty.false_positive_rates,
                              clean.false_positive_rates)
        assert dirty.auc == pytest.approx(clean.auc)

    def test_clean_curve_reports_zero_dropped(self):
        curve = roc_curve([0.1, 0.2], [1.0, 2.0])
        assert curve.dropped_authentic == 0
        assert curve.dropped_attack == 0

    def test_all_nan_population_raises(self):
        with pytest.raises(ConfigurationError):
            roc_curve([float("nan"), float("nan")], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            roc_curve([0.1, 0.2], [float("nan")])

    def test_equal_error_rate_interpolates_the_crossing(self):
        # Regression: the EER used to snap to the nearest grid point.
        # With h0 = [1, 2, 3], h1 = [2.5, 3.5, 4.5, 5.5] on a 4-point
        # grid, the FNR-FPR difference runs [1, 1/2, -1/3, -1]; the
        # sign change sits t = (1/2)/(1/2 + 1/3) = 3/5 of the way from
        # FPR 0 to FPR 1/3, so the interpolated EER is exactly 1/5 —
        # the old nearest-point answer was 1/6.
        curve = roc_curve([1.0, 2.0, 3.0], [2.5, 3.5, 4.5, 5.5],
                          num_points=4)
        assert curve.equal_error_rate() == pytest.approx(0.2, abs=1e-12)

    def test_equal_error_rate_exact_grid_crossing(self):
        # A symmetric overlap puts FNR == FPR exactly on a grid point;
        # the interpolation must return it unchanged.
        curve = roc_curve([1.0, 3.0], [2.0, 4.0], num_points=5)
        fnr = 1.0 - curve.true_positive_rates
        diff = fnr - curve.false_positive_rates
        assert (diff == 0.0).any()
        index = int(np.flatnonzero(diff == 0.0)[0])
        assert curve.equal_error_rate() == pytest.approx(
            float(curve.false_positive_rates[index])
        )

    def test_defense_scores_give_perfect_auc(self, authentic_link, emulated_link):
        """End-to-end: the cumulant statistic yields AUC = 1 at 17 dB."""
        from repro.channel.awgn import AwgnChannel
        from repro.defense.detector import CumulantDetector
        from repro.experiments.defense_common import defense_receiver

        receiver = defense_receiver()
        detector = CumulantDetector()
        h0, h1 = [], []
        for i in range(5):
            for target, prepared in ((h0, authentic_link), (h1, emulated_link)):
                noisy = AwgnChannel(17, rng=10 * i + len(target)).apply(
                    prepared.on_air
                )
                packet = receiver.receive(noisy)
                target.append(
                    detector.statistic(
                        packet.diagnostics.psdu_quadrature_soft_chips
                    ).distance_squared
                )
        assert roc_curve(h0, h1).auc == pytest.approx(1.0, abs=1e-9)


class TestSequentialDetector:
    def _detector(self):
        return SequentialDetector(
            h0_log_mean=np.log(0.005), h1_log_mean=np.log(0.2), log_std=0.8
        )

    def test_attack_stream_fires_h1(self):
        detector = self._detector()
        decision, used = detector.run([0.2, 0.25, 0.18, 0.22, 0.2, 0.21])
        assert decision is SequentialDecision.ATTACK
        assert used <= 6

    def test_authentic_stream_fires_h0(self):
        detector = self._detector()
        decision, used = detector.run([0.005, 0.004, 0.006, 0.005, 0.005, 0.005])
        assert decision is SequentialDecision.AUTHENTIC

    def test_ambiguous_stream_continues(self):
        detector = self._detector()
        boundary = float(np.exp((np.log(0.005) + np.log(0.2)) / 2))
        decision, _ = detector.run([boundary])
        assert decision is SequentialDecision.CONTINUE

    def test_aggregation_beats_single_shot(self):
        """Scores individually ambiguous resolve after several packets."""
        detector = self._detector()
        slightly_high = float(np.exp(np.log(0.2) - 0.7))
        decision, used = detector.run([slightly_high] * 20)
        assert decision is SequentialDecision.ATTACK
        assert used > 1

    def test_calibrate_from_training_data(self):
        rng = np.random.default_rng(0)
        h0 = np.exp(rng.normal(np.log(0.005), 0.5, 50))
        h1 = np.exp(rng.normal(np.log(0.2), 0.5, 50))
        detector = SequentialDetector.calibrate(list(h0), list(h1))
        decision, _ = detector.run(list(np.exp(
            rng.normal(np.log(0.2), 0.5, 30))))
        assert decision is SequentialDecision.ATTACK

    def test_rejects_inverted_means(self):
        with pytest.raises(ConfigurationError):
            SequentialDetector(h0_log_mean=0.0, h1_log_mean=-1.0)

    def test_state_tracks_history(self):
        detector = self._detector()
        state = SequentialState()
        detector.update(state, 0.1)
        detector.update(state, 0.2)
        assert state.packets_observed == 2
        assert state.history == [0.1, 0.2]


class TestSixthOrder:
    def test_qpsk_theoretical_values(self):
        c60, c63 = theoretical_sixth_order("QPSK")
        assert abs(c60) < 1e-9
        assert c63 == pytest.approx(QPSK_C63)

    def test_known_swami_sadler_values(self):
        # Published C63 values: BPSK 13, 16QAM 2.08, 64QAM ~1.7972.
        assert theoretical_sixth_order("BPSK")[1] == pytest.approx(13.0)
        assert theoretical_sixth_order("16QAM")[1] == pytest.approx(2.08)
        assert theoretical_sixth_order("64QAM")[1] == pytest.approx(1.7972, abs=1e-3)

    def test_sample_estimate_converges(self):
        from repro.defense.amc import synthesize_symbols

        symbols = synthesize_symbols("QPSK", 50000, rng=0)
        estimate = estimate_sixth_order(symbols)
        assert estimate.c63_hat == pytest.approx(QPSK_C63, abs=0.05)

    def test_extended_feature_separates_classes(
        self, authentic_link, emulated_link
    ):
        from repro.defense.constellation import reconstruct_constellation
        from repro.experiments.defense_common import defense_receiver

        receiver = defense_receiver()
        distances = {}
        for label, prepared in (("auth", authentic_link), ("emu", emulated_link)):
            packet = receiver.receive(prepared.on_air)
            points = reconstruct_constellation(
                packet.diagnostics.psdu_quadrature_soft_chips
            )
            distances[label] = extended_feature(points).distance_squared()
        assert distances["emu"] > 5 * distances["auth"]

    def test_rejects_tiny_sample(self):
        with pytest.raises(ConfigurationError):
            estimate_sixth_order(np.ones(4, dtype=complex))
