"""End-to-end tests for the ZigBee receiver."""

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel
from repro.errors import ConfigurationError
from repro.utils.signal_ops import Waveform
from repro.zigbee.receiver import ReceiverConfig, ZigBeeReceiver
from repro.zigbee.transmitter import ZigBeeTransmitter


def _padded(waveform, lead=120, tail=80):
    samples = np.concatenate(
        [np.zeros(lead, dtype=complex), waveform.samples,
         np.zeros(tail, dtype=complex)]
    )
    return Waveform(samples, waveform.sample_rate_hz)


@pytest.fixture(scope="module")
def sent():
    return ZigBeeTransmitter().transmit_payload(b"receiver-test", sequence_number=3)


class TestNoiselessReception:
    def test_decodes_payload(self, sent):
        packet = ZigBeeReceiver().receive(_padded(sent.waveform))
        assert packet.decoded and packet.fcs_ok
        assert packet.mac_frame.payload == b"receiver-test"
        assert packet.mac_frame.sequence_number == 3

    def test_zero_hamming_distance(self, sent):
        packet = ZigBeeReceiver().receive(_padded(sent.waveform))
        assert max(packet.diagnostics.hamming_distances) == 0

    def test_diagnostics_trimmed_to_frame(self, sent):
        packet = ZigBeeReceiver().receive(_padded(sent.waveform, tail=2000))
        assert len(packet.diagnostics.symbols) == sent.symbols.size
        assert packet.diagnostics.soft_chips.size == sent.chips.size

    def test_soft_chips_are_unit(self, sent):
        # Phase tracking adds sub-percent jitter around the ideal +/-1.
        packet = ZigBeeReceiver().receive(_padded(sent.waveform))
        assert np.allclose(np.abs(packet.diagnostics.soft_chips), 1.0, atol=0.05)

    def test_genie_start(self, sent):
        packet = ZigBeeReceiver().receive(_padded(sent.waveform, lead=50),
                                          known_start=50)
        assert packet.decoded and packet.fcs_ok

    def test_quadrature_decode_path(self, sent):
        receiver = ZigBeeReceiver(ReceiverConfig(demodulation="quadrature"))
        packet = receiver.receive(_padded(sent.waveform))
        assert packet.decoded and packet.fcs_ok


class TestNoisyReception:
    @pytest.mark.parametrize("snr_db", [8, 12])
    def test_decodes_under_awgn(self, sent, snr_db):
        noisy = AwgnChannel(snr_db, rng=snr_db).apply(_padded(sent.waveform))
        packet = ZigBeeReceiver().receive(noisy)
        assert packet.decoded and packet.fcs_ok

    def test_noise_floor_estimated_from_lead_in(self, sent):
        noisy = AwgnChannel(10, rng=0).apply(_padded(sent.waveform, lead=200))
        packet = ZigBeeReceiver().receive(noisy)
        estimate = packet.diagnostics.noise_variance
        assert estimate is not None
        assert estimate == pytest.approx(0.1, rel=0.5)

    def test_no_noise_estimate_without_lead_in(self, sent):
        packet = ZigBeeReceiver().receive(sent.waveform, known_start=0)
        assert packet.diagnostics.noise_variance is None


class TestChannelization:
    def test_filtered_20msps_roundtrip(self, sent):
        air = _padded(sent.waveform).resampled_to(20e6)
        packet = ZigBeeReceiver().receive(air)
        assert packet.decoded and packet.fcs_ok

    def test_naive_decimation_roundtrip(self, sent):
        receiver = ZigBeeReceiver(ReceiverConfig(decimation="naive"))
        air = _padded(sent.waveform).resampled_to(20e6)
        packet = receiver.receive(air)
        assert packet.decoded and packet.fcs_ok

    def test_rejects_slower_input(self, sent):
        receiver = ZigBeeReceiver()
        slow = Waveform(sent.waveform.samples, 2e6)
        with pytest.raises(ConfigurationError):
            receiver.channelize(slow)


class TestConfigValidation:
    def test_rejects_unknown_demodulation(self):
        with pytest.raises(ConfigurationError):
            ReceiverConfig(demodulation="magic")

    def test_rejects_unknown_decimation(self):
        with pytest.raises(ConfigurationError):
            ReceiverConfig(decimation="skip")


class TestCorruptedFrames:
    def test_flipped_payload_fails_fcs(self, sent):
        # Flip enough chips in one payload symbol to change the decoded
        # symbol: find the symbol's chip span and invert 20 chips.
        from repro.zigbee.oqpsk import OqpskModulator
        chips = sent.chips.copy()
        target = 20 * 32  # symbol 20 (inside the PSDU)
        chips[target : target + 20] ^= 1
        waveform = OqpskModulator(2).modulate(chips)
        packet = ZigBeeReceiver().receive(
            _padded(Waveform(waveform, 4e6))
        )
        # Either the symbol decodes to something wrong (FCS fails) or the
        # despreader dropped it (no PSDU) — both count as non-delivery.
        assert not packet.fcs_ok
