"""Tests for the run registry and cross-run diffing.

Covers the on-disk run-directory contract (manifest written twice,
rows/metrics/events round trips), token resolution (``latest``, exact
ids, unique prefixes, literal paths), the regression gate semantics
(row diffs and failure-counter increases trip it; gauge noise does
not), and the ``runs list|show|tail|diff`` CLI surface end to end.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.telemetry.diff import diff_runs, format_run_diff, parse_percentage
from repro.telemetry.registry import RunDirectory, RunRegistry, make_run_id


def _result(value=0.25):
    result = ExperimentResult(
        experiment_id="table2",
        title="demo",
        columns=["snr_db", "wer"],
    )
    result.add_row(snr_db=15, wer=value)
    result.add_row(snr_db=17, wer=value / 2)
    result.notes.append("synthetic fixture")
    return result


def _make_run(root, name, value=0.25, counters=None, elapsed=2.0):
    """Hand-build a complete run directory fixture."""
    run = RunDirectory(root / name).create()
    run.write_manifest({
        "status": "ok",
        "seed": 1,
        "experiments": ["table2"],
        "elapsed_seconds": elapsed,
    })
    run.write_metrics({
        "spans": {"name": "run", "seconds": elapsed, "count": 1,
                  "children": []},
        "metrics": {"counters": counters or {"engine.trials": 12.0},
                    "gauges": {}, "histograms": {}},
    })
    run.write_rows(_result(value))
    with open(run.events_path, "w") as handle:
        for record in (
            {"event": "run_started", "seq": 1, "ts": 0.0},
            {"event": "heartbeat", "seq": 2, "ts": 1.0, "trials_done": 12},
            {"event": "run_finished", "seq": 3, "ts": 2.0, "status": "ok",
             "elapsed_seconds": elapsed},
        ):
            handle.write(json.dumps(record) + "\n")
    return run


class TestRunDirectory:
    def test_run_ids_sort_chronologically(self):
        assert make_run_id("table2") < "9"  # starts with a digit year
        first = make_run_id("a")
        assert first.split("-")[-2] == "a"

    def test_label_is_sanitized(self):
        run_id = make_run_id("all the/things!")
        assert "/" not in run_id and " " not in run_id

    def test_rows_round_trip(self, tmp_path):
        run = _make_run(tmp_path, "r1", value=0.5)
        payloads = run.read_rows()
        assert set(payloads) == {"table2"}
        payload = payloads["table2"]
        assert payload["columns"] == ["snr_db", "wer"]
        assert payload["rows"] == [[15, 0.5], [17, 0.25]]
        assert payload["notes"] == ["synthetic fixture"]

    def test_summary_merges_manifest_and_events(self, tmp_path):
        run = _make_run(tmp_path, "r1", elapsed=3.5)
        summary = run.summary()
        assert summary["status"] == "ok"
        assert summary["experiments"] == ["table2"]
        assert summary["trials_done"] == 12
        assert summary["elapsed_seconds"] == 3.5

    def test_summary_of_killed_run_reports_running(self, tmp_path):
        run = RunDirectory(tmp_path / "dead").create()
        run.write_manifest({"status": "running", "seed": 7})
        assert run.summary()["status"] == "running"


class TestRunRegistry:
    def test_list_is_newest_first(self, tmp_path):
        registry = RunRegistry(tmp_path)
        for name in ("20260101T000000-a-0000", "20260102T000000-b-0000"):
            RunDirectory(tmp_path / name).create()
        ids = [run.run_id for run in registry.list()]
        assert ids == ["20260102T000000-b-0000", "20260101T000000-a-0000"]

    def test_resolve_latest_exact_prefix_and_path(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        old = _make_run(tmp_path / "runs", "20260101T000000-a-0000")
        new = _make_run(tmp_path / "runs", "20260102T000000-b-0000")
        outside = _make_run(tmp_path / "baselines", "committed")
        assert registry.resolve("latest").run_id == new.run_id
        assert registry.resolve(old.run_id).run_id == old.run_id
        assert registry.resolve("20260101").run_id == old.run_id
        assert registry.resolve(str(outside.path)).run_id == "committed"

    def test_resolve_rejects_ambiguous_and_unknown(self, tmp_path):
        registry = RunRegistry(tmp_path)
        _make_run(tmp_path, "20260101T000000-a-0000")
        _make_run(tmp_path, "20260101T000001-b-0000")
        with pytest.raises(ConfigurationError):
            registry.resolve("20260101")
        with pytest.raises(ConfigurationError):
            registry.resolve("nope")

    def test_resolve_latest_with_no_runs(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunRegistry(tmp_path / "empty").resolve("latest")


class TestDiffAndGate:
    def test_identical_runs_pass_the_gate(self, tmp_path):
        run_a = _make_run(tmp_path, "a")
        run_b = _make_run(tmp_path, "b")
        diff = diff_runs(run_a, run_b)
        assert diff.row_diffs == []
        assert diff.gate_passed
        assert "gate: PASS" in format_run_diff(diff, gate=True)

    def test_row_regression_trips_the_gate(self, tmp_path):
        run_a = _make_run(tmp_path, "a", value=0.25)
        run_b = _make_run(tmp_path, "b", value=0.75)
        diff = diff_runs(run_a, run_b)
        assert any("wer" in item for item in diff.row_diffs)
        assert not diff.gate_passed
        assert "gate: FAIL" in format_run_diff(diff, gate=True)

    def test_failure_counter_increase_trips_the_gate(self, tmp_path):
        run_a = _make_run(
            tmp_path, "a",
            counters={"engine.trials": 12.0, "engine.trial_failures": 0.0},
        )
        run_b = _make_run(
            tmp_path, "b",
            counters={"engine.trials": 12.0, "engine.trial_failures": 2.0},
        )
        diff = diff_runs(run_a, run_b)
        assert any("trial_failures" in item for item in diff.gate_failures)

    def test_benign_counter_changes_do_not_gate(self, tmp_path):
        run_a = _make_run(tmp_path, "a", counters={"engine.trials": 12.0})
        run_b = _make_run(tmp_path, "b", counters={"engine.trials": 24.0})
        diff = diff_runs(run_a, run_b)
        assert diff.counter_diffs and diff.gate_passed

    def test_wallclock_regression_and_opt_out(self, tmp_path):
        run_a = _make_run(tmp_path, "a", elapsed=1.0)
        run_b = _make_run(tmp_path, "b", elapsed=2.0)
        gated = diff_runs(run_a, run_b, max_regression=0.2)
        assert any("wall-clock" in item for item in gated.gate_failures)
        relaxed = diff_runs(run_a, run_b, max_regression=0.2, wallclock=False)
        assert relaxed.gate_passed

    def test_parse_percentage_forms(self):
        assert parse_percentage("20%") == pytest.approx(0.2)
        assert parse_percentage("0.5") == pytest.approx(0.5)
        with pytest.raises(ConfigurationError):
            parse_percentage("fast")
        with pytest.raises(ConfigurationError):
            parse_percentage("-5%")


class TestRunsCli:
    def test_identical_seed_runs_diff_clean(self, tmp_path, capsys):
        runs_dir = str(tmp_path / "runs")
        base = ["run", "table1", "--seed", "2", "--telemetry",
                "--runs-dir", runs_dir]
        assert main(base) == 0
        assert main(base) == 0
        capsys.readouterr()
        registry = RunRegistry(runs_dir)
        older, newer = [run.run_id for run in registry.list()][1::-1]
        assert main(["runs", "diff", older, newer, "--runs-dir", runs_dir,
                     "--gate", "--no-wallclock"]) == 0
        out = capsys.readouterr().out
        assert "rows: 0 difference(s)" in out
        assert "gate: PASS" in out

    def test_gate_fails_on_injected_regression(self, tmp_path, capsys):
        _make_run(tmp_path, "a", value=0.25)
        _make_run(tmp_path, "b", value=0.99)
        assert main(["runs", "diff", "a", "b",
                     "--runs-dir", str(tmp_path), "--gate"]) == 1
        assert "gate: FAIL" in capsys.readouterr().out

    def test_list_show_and_tail(self, tmp_path, capsys):
        _make_run(tmp_path, "20260101T000000-table2-0000")
        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "20260101T000000-table2-0000" in out and "ok" in out

        assert main(["runs", "show", "latest",
                     "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run directory:" in out
        assert "events" in out

        assert main(["runs", "tail", "latest",
                     "--runs-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "run_started" in out and "run_finished" in out

    def test_list_with_no_runs(self, tmp_path, capsys):
        assert main(["runs", "list", "--runs-dir", str(tmp_path)]) == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_unknown_token_exits_2(self, tmp_path, capsys):
        assert main(["runs", "show", "missing",
                     "--runs-dir", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err
