"""Tests for the AWGN channel and the paper's SNR convention."""

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel, add_awgn
from repro.errors import ConfigurationError
from repro.utils.signal_ops import Waveform, average_power


def _tone(n=20000, rate=20e6):
    return Waveform(np.exp(2j * np.pi * 1e6 * np.arange(n) / rate), rate)


class TestAddAwgn:
    def test_noise_power_matches_snr(self):
        clean = np.ones(100000, dtype=complex)
        noisy = add_awgn(clean, snr_db=10.0, rng=0)
        noise_power = average_power(noisy - clean)
        assert noise_power == pytest.approx(0.1, rel=0.05)

    def test_deterministic_with_seed(self):
        clean = np.ones(64, dtype=complex)
        assert np.array_equal(add_awgn(clean, 5, rng=42), add_awgn(clean, 5, rng=42))

    def test_rejects_zero_signal(self):
        with pytest.raises(ConfigurationError):
            add_awgn(np.zeros(10, dtype=complex), 10.0)

    def test_noise_is_complex_circular(self):
        clean = np.zeros(200000, dtype=complex) + 1.0
        noise = add_awgn(clean, 0.0, rng=1) - clean
        # Real and imaginary parts carry equal power.
        assert np.var(noise.real) == pytest.approx(np.var(noise.imag), rel=0.05)
        assert abs(np.mean(noise)) < 0.01


class TestAwgnChannel:
    def test_normalizes_input_power(self):
        scaled = _tone().with_samples(_tone().samples * 7.3)
        noisy = AwgnChannel(snr_db=40, rng=0).apply(scaled)
        assert noisy.power == pytest.approx(1.0, rel=0.05)

    def test_skip_normalization(self):
        scaled = _tone().with_samples(_tone().samples * 2.0)
        noisy = AwgnChannel(snr_db=40, rng=0, normalize=False).apply(scaled)
        assert noisy.power == pytest.approx(4.0, rel=0.05)

    def test_in_band_reference_scales_noise(self):
        channel = AwgnChannel(10.0, noise_bandwidth_hz=2e6)
        assert channel.effective_snr_db(20e6) == pytest.approx(0.0)

    def test_in_band_noise_after_filtering(self):
        """A receiver filtering to the reference band sees the target SNR."""
        from repro.utils.signal_ops import lowpass_filter

        target_snr_db = 12.0
        tone = _tone(n=100000)
        channel = AwgnChannel(
            target_snr_db, rng=3, noise_bandwidth_hz=2e6, normalize=False
        )
        noisy = channel.apply(tone)
        noise = noisy.samples - tone.samples
        filtered_noise = lowpass_filter(noise, 1e6, 20e6)
        in_band_noise_power = average_power(filtered_noise[500:-500])
        snr = 1.0 / in_band_noise_power
        assert 10 * np.log10(snr) == pytest.approx(target_snr_db, abs=1.0)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            AwgnChannel(10.0, noise_bandwidth_hz=-1.0)
