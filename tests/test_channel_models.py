"""Tests for offsets, fading, path loss, and environment presets."""

import numpy as np
import pytest

from repro.channel.base import ChannelChain, IdentityChannel
from repro.channel.environment import DEFAULT_INDOOR_BUDGET, RealEnvironment
from repro.channel.fading import (
    BlockFadingChannel,
    MultipathChannel,
    rayleigh_gain,
    rician_gain,
)
from repro.channel.offsets import (
    FrequencyOffsetChannel,
    PhaseOffsetChannel,
    oscillator_cfo_hz,
)
from repro.channel.pathloss import (
    LinkBudget,
    free_space_path_loss_db,
)
from repro.errors import ConfigurationError
from repro.utils.signal_ops import Waveform, average_power


def _tone(n=4096, rate=20e6, f=1e6):
    return Waveform(np.exp(2j * np.pi * f * np.arange(n) / rate), rate)


class TestOffsets:
    def test_fixed_phase(self):
        tone = _tone()
        rotated = PhaseOffsetChannel(phase_rad=np.pi / 3).apply(tone)
        assert np.allclose(rotated.samples, tone.samples * np.exp(1j * np.pi / 3))

    def test_random_phase_in_range(self):
        tone = _tone(16)
        rotated = PhaseOffsetChannel(rng=0).apply(tone)
        ratio = rotated.samples[0] / tone.samples[0]
        assert abs(abs(ratio) - 1.0) < 1e-12

    def test_fixed_cfo_moves_spectrum(self):
        tone = _tone()
        shifted = FrequencyOffsetChannel(offset_hz=2e6).apply(tone)
        peak = np.argmax(np.abs(np.fft.fft(shifted.samples)))
        expected = int(round(3e6 / 20e6 * tone.samples.size))
        assert peak == pytest.approx(expected, abs=1)

    def test_random_cfo_bounded(self):
        tone = _tone(1024)
        channel = FrequencyOffsetChannel(max_offset_hz=100.0, rng=1)
        shifted = channel.apply(tone)
        # Phase drift over the waveform bounded by 2*pi*fmax*T.
        drift = np.angle(shifted.samples[-1] / tone.samples[-1])
        max_drift = 2 * np.pi * 100.0 * tone.duration_s
        assert abs(drift) <= max_drift + 1e-9

    def test_oscillator_cfo(self):
        assert oscillator_cfo_hz(2.4e9, 10.0) == pytest.approx(24000.0)


class TestFading:
    def test_rician_gain_unit_mean_power(self):
        rng = np.random.default_rng(0)
        gains = [rician_gain(12.0, rng) for _ in range(4000)]
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_rayleigh_gain_unit_mean_power(self):
        rng = np.random.default_rng(1)
        gains = [rayleigh_gain(rng) for _ in range(4000)]
        assert np.mean(np.abs(gains) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_high_k_is_nearly_constant_magnitude(self):
        rng = np.random.default_rng(2)
        gains = [rician_gain(40.0, rng) for _ in range(200)]
        assert np.std(np.abs(gains)) < 0.05

    def test_block_fading_applies_single_gain(self):
        tone = _tone(128)
        faded = BlockFadingChannel(k_factor_db=12.0, rng=3).apply(tone)
        ratio = faded.samples / tone.samples
        assert np.allclose(ratio, ratio[0])

    def test_multipath_normalized_taps(self):
        channel = MultipathChannel(num_taps=4, rng=4)
        assert np.sum(np.abs(channel.taps) ** 2) == pytest.approx(1.0)

    def test_multipath_explicit_taps(self):
        channel = MultipathChannel(taps=[1.0, 0.5])
        tone = _tone(64)
        out = channel.apply(tone)
        assert out.samples.size == tone.samples.size

    def test_multipath_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            MultipathChannel(taps=[])


class TestPathLoss:
    def test_free_space_reference(self):
        # 2.4 GHz at 1 m is about 40 dB.
        assert free_space_path_loss_db(1.0, 2.4e9) == pytest.approx(40.0, abs=0.5)

    def test_distance_doubling_adds_6db(self):
        budget = LinkBudget(path_loss_exponent=2.0, shadowing_sigma_db=0.0)
        loss_2m = budget.path_loss_db(2.0)
        loss_4m = budget.path_loss_db(4.0)
        assert loss_4m - loss_2m == pytest.approx(6.02, abs=0.1)

    def test_snr_decreases_with_distance(self):
        budget = DEFAULT_INDOOR_BUDGET
        snrs = [budget.snr_db(d) for d in (1, 2, 4, 8)]
        # shadowing is random; use many draws or sigma=0 version
        from dataclasses import replace

        deterministic = replace(budget, shadowing_sigma_db=0.0)
        snrs = [deterministic.snr_db(d) for d in (1, 2, 4, 8)]
        assert snrs == sorted(snrs, reverse=True)

    def test_interference_raises_floor(self):
        from dataclasses import replace

        quiet = replace(DEFAULT_INDOOR_BUDGET, interference_power_dbm=None)
        assert DEFAULT_INDOOR_BUDGET.noise_floor_dbm > quiet.noise_floor_dbm

    def test_rejects_nonpositive_distance(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_INDOOR_BUDGET.path_loss_db(0.0)


class TestEnvironment:
    def test_channel_chain_composes(self):
        tone = _tone(256)
        chain = ChannelChain([IdentityChannel(), PhaseOffsetChannel(phase_rad=0.5)])
        out = chain.apply(tone)
        assert np.allclose(out.samples, tone.samples * np.exp(0.5j))

    def test_real_environment_decreasing_snr(self):
        env = RealEnvironment(rng=0)
        from dataclasses import replace

        env.budget = replace(env.budget, shadowing_sigma_db=0.0)
        assert env.snr_db_at(1.0) > env.snr_db_at(8.0)

    def test_channel_at_produces_noisy_waveform(self):
        env = RealEnvironment(rng=1)
        tone = _tone(2048)
        out = env.channel_at(3.0).apply(tone)
        assert out.samples.size == tone.samples.size
        assert not np.allclose(out.samples, tone.samples)

    def test_extra_loss_reduces_snr(self):
        env = RealEnvironment(rng=2)
        # With a huge extra loss the output is mostly noise.
        tone = _tone(4096)
        noisy = env.channel_at(1.0, extra_loss_db=60.0).apply(tone)
        residual = noisy.samples - tone.samples
        assert average_power(residual) > 10 * average_power(tone.samples)
