"""Tests for the multi-device attack-campaign simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.link.campaign import CampaignSimulator


@pytest.fixture(scope="module")
def simulator():
    return CampaignSimulator([1.0, 3.0], rng=11)


class TestCampaign:
    def test_gateway_command_delivers(self, simulator):
        event = simulator.gateway_command(2, b"TURN-ON")
        assert not event.is_attack
        assert event.delivered
        assert not event.detected

    def test_replay_requires_prior_observation(self):
        fresh = CampaignSimulator([2.0], rng=0)
        with pytest.raises(ConfigurationError):
            fresh.attacker_replay(2)

    def test_replay_delivers_and_is_detected(self, simulator):
        simulator.gateway_command(3, b"OPEN-LOCK")
        event = simulator.attacker_replay(3)
        assert event.is_attack
        assert event.delivered   # the attack works at the MAC layer...
        assert event.detected    # ...and the PHY defense flags it

    def test_stats_accounting(self):
        sim = CampaignSimulator([2.0], rng=3)
        sim.gateway_command(2, b"A")
        sim.attacker_replay(2)
        sim.gateway_command(2, b"B")
        stats = sim.stats[2]
        assert stats.legitimate_sent == 2
        assert stats.attacks_sent == 1
        assert 0.0 <= stats.attack_success_rate <= 1.0

    def test_random_campaign_no_false_alarms(self):
        sim = CampaignSimulator([1.0, 4.0], rng=5)
        sim.run_random_campaign(rounds=6, attack_probability=0.5)
        false_alarms = [
            event for event in sim.events
            if not event.is_attack and event.detected
        ]
        assert not false_alarms

    def test_random_campaign_detects_delivered_attacks(self):
        sim = CampaignSimulator([1.0, 4.0], rng=6)
        sim.run_random_campaign(rounds=6, attack_probability=0.8)
        delivered_attacks = [
            event for event in sim.events if event.is_attack and event.delivered
        ]
        assert delivered_attacks  # the attack does land...
        detected = [event for event in delivered_attacks if event.detected]
        assert len(detected) == len(delivered_attacks)  # ...and is caught

    def test_rejects_empty_topology(self):
        with pytest.raises(ConfigurationError):
            CampaignSimulator([])

    def test_rejects_unknown_device(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.gateway_command(99, b"X")

    def test_rejects_bad_campaign_parameters(self, simulator):
        with pytest.raises(ConfigurationError):
            simulator.run_random_campaign(rounds=0)
        with pytest.raises(ConfigurationError):
            simulator.run_random_campaign(rounds=1, attack_probability=1.5)
