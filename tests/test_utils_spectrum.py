"""Tests for Welch PSD and band-power utilities."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.signal_ops import Waveform
from repro.utils.spectrum import band_power_ratio, welch_psd


def _tone(f, rate=20e6, n=8192):
    return Waveform(np.exp(2j * np.pi * f * np.arange(n) / rate), rate)


class TestWelchPsd:
    def test_tone_peak_at_frequency(self):
        spectrum = welch_psd(_tone(3e6))
        peak = spectrum.frequencies_hz[np.argmax(spectrum.psd)]
        assert peak == pytest.approx(3e6, abs=spectrum.frequencies_hz[1]
                                     - spectrum.frequencies_hz[0])

    def test_negative_frequency_tone(self):
        spectrum = welch_psd(_tone(-4e6))
        peak = spectrum.frequencies_hz[np.argmax(spectrum.psd)]
        assert peak < 0

    def test_total_power_matches_time_domain(self):
        waveform = _tone(1e6)
        spectrum = welch_psd(waveform)
        assert spectrum.total_power == pytest.approx(1.0, rel=0.05)

    def test_band_power_captures_tone(self):
        spectrum = welch_psd(_tone(2e6))
        inside = spectrum.band_power(1.5e6, 2.5e6)
        outside = spectrum.band_power(-8e6, -7e6)
        assert inside > 100 * max(outside, 1e-12)

    def test_rejects_short_waveform(self):
        with pytest.raises(ConfigurationError):
            welch_psd(Waveform(np.ones(32, dtype=complex), 4e6), segment_length=256)


class TestOccupiedBandwidth:
    def test_zigbee_occupies_about_2mhz(self, authentic_link):
        spectrum = welch_psd(authentic_link.on_air)
        bandwidth = spectrum.occupied_bandwidth(0.99)
        assert 1e6 < bandwidth < 3.5e6

    def test_emulated_waveform_stays_in_band(self, emulated_link):
        """The attack confines itself to the ZigBee overlap band."""
        ratio = band_power_ratio(emulated_link.on_air, (-1.5e6, 1.5e6))
        assert ratio > 0.95

    def test_wifi_frame_occupies_most_of_20mhz(self):
        from repro.wifi.transmitter import WifiTransmitter

        frame = WifiTransmitter(rate_mbps=54).transmit_psdu(bytes(range(100)))
        spectrum = welch_psd(frame.waveform)
        bandwidth = spectrum.occupied_bandwidth(0.99)
        assert bandwidth > 15e6

    def test_rejects_bad_fraction(self):
        spectrum = welch_psd(_tone(1e6))
        with pytest.raises(ConfigurationError):
            spectrum.occupied_bandwidth(1.5)
