"""Tests for the rejected baseline defenses (Sec. VI-A1)."""

import numpy as np
import pytest

from repro.defense.baselines import (
    ChipSequenceBaseline,
    CyclicPrefixDetector,
    PhaseTrajectoryBaseline,
)
from repro.errors import ConfigurationError
from repro.utils.signal_ops import Waveform
from repro.zigbee.receiver import ZigBeeReceiver


class TestCyclicPrefixDetector:
    def test_detects_pristine_emulated_waveform(self, emulation_result):
        detector = CyclicPrefixDetector()
        score = detector.score(emulation_result.waveform)
        assert score.mean_correlation > 0.99
        assert detector.is_emulated(emulation_result.waveform)

    def test_authentic_waveform_scores_lower(self, authentic_link, emulation_result):
        detector = CyclicPrefixDetector()
        authentic_score = detector.score(authentic_link.on_air, start=500)
        emulated_score = detector.score(emulation_result.waveform)
        assert authentic_score.mean_correlation < emulated_score.mean_correlation

    def test_fails_at_receiver_rate(self, authentic_link, emulated_link):
        """After channelization the CP structure is unobservable (Fig. 8)."""
        from repro.utils.signal_ops import polyphase_resample

        receiver = ZigBeeReceiver()
        detector = CyclicPrefixDetector()
        scores = {}
        for label, prepared in (("auth", authentic_link), ("emu", emulated_link)):
            baseband = receiver.channelize(prepared.on_air)
            upsampled = Waveform(
                polyphase_resample(baseband.samples, 4e6, 20e6), 20e6
            )
            scores[label] = detector.score_best_alignment(upsampled).mean_correlation
        # No clean threshold: the class gap collapses below 0.2.
        assert abs(scores["emu"] - scores["auth"]) < 0.2

    def test_best_alignment_at_least_aligned_score(self, emulation_result):
        detector = CyclicPrefixDetector()
        aligned = detector.score(emulation_result.waveform).mean_correlation
        best = detector.score_best_alignment(
            emulation_result.waveform
        ).mean_correlation
        assert best >= aligned - 1e-12

    def test_rejects_short_waveform(self):
        with pytest.raises(ConfigurationError):
            CyclicPrefixDetector().score(Waveform(np.ones(10, dtype=complex), 20e6))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            CyclicPrefixDetector(decision_threshold=0.0)


class TestPhaseTrajectory:
    def test_self_correlation_is_one(self, authentic_link):
        receiver = ZigBeeReceiver()
        baseband = receiver.channelize(authentic_link.on_air)
        baseline = PhaseTrajectoryBaseline()
        score = baseline.score(baseband, baseband)
        assert score.correlation == pytest.approx(1.0)

    def test_deviation_statistic_matches_across_classes(
        self, authentic_link, emulated_link
    ):
        """The reference-free statistic can't separate the classes."""
        receiver = ZigBeeReceiver()
        baseline = PhaseTrajectoryBaseline()
        auth = baseline.estimate_frequency_deviation(
            receiver.channelize(authentic_link.on_air)
        )
        emu = baseline.estimate_frequency_deviation(
            receiver.channelize(emulated_link.on_air)
        )
        assert emu == pytest.approx(auth, rel=0.25)

    def test_chip_rate_estimate_near_2mchips(self, authentic_link):
        receiver = ZigBeeReceiver()
        baseline = PhaseTrajectoryBaseline()
        rate = baseline.estimate_chip_rate(
            receiver.channelize(authentic_link.on_air)
        )
        assert rate == pytest.approx(2e6, rel=0.25)

    def test_clipping_bounds_output(self, emulated_link):
        receiver = ZigBeeReceiver()
        baseband = receiver.channelize(emulated_link.on_air)
        frequency = PhaseTrajectoryBaseline.instantaneous_frequency(baseband)
        assert np.max(np.abs(frequency)) <= 1e6 + 1e-6

    def test_short_waveform_rejected(self):
        baseline = PhaseTrajectoryBaseline()
        tiny = Waveform(np.ones(1, dtype=complex), 4e6)
        with pytest.raises(ConfigurationError):
            baseline.estimate_frequency_deviation(tiny)


class TestChipSequenceBaseline:
    def test_identical_chips_agree(self):
        from repro.zigbee.spreading import spread_symbols

        chips = spread_symbols([1, 2, 3])
        score = ChipSequenceBaseline().score(chips, chips)
        assert score.chip_agreement == 1.0
        assert score.symbol_agreement == 1.0

    def test_different_chips_same_symbols(self):
        """The paper's Fig. 9b: chips differ, decoded symbols agree."""
        from repro.zigbee.spreading import spread_symbols

        chips = spread_symbols([4, 9])
        corrupted = chips.copy()
        corrupted[[1, 7, 13, 33, 40, 55]] ^= 1
        score = ChipSequenceBaseline().score(chips, corrupted)
        assert score.chip_agreement < 1.0
        assert score.symbol_agreement == 1.0
        assert score.symbols_a == score.symbols_b == [4, 9]

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            ChipSequenceBaseline().score([0, 1], [0])
