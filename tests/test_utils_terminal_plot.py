"""Tests for the ASCII plotting helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.terminal_plot import bar_chart, line_plot, scatter_plot


class TestScatterPlot:
    def test_renders_points_and_axes(self):
        points = np.array([1 + 1j, -1 - 1j, 1 - 1j, -1 + 1j])
        text = scatter_plot(points, width=21, height=11, title="qpsk")
        assert "qpsk" in text
        assert "|" in text and "-" in text  # axes drawn
        assert text.count("\n") >= 12

    def test_density_ramp_used(self):
        rng = np.random.default_rng(0)
        points = np.concatenate(
            [np.full(100, 1 + 1j), 0.02 * (rng.standard_normal(5)
                                           + 1j * rng.standard_normal(5))]
        )
        text = scatter_plot(points, width=21, height=11, axes=False)
        assert "#" in text  # the dense cluster hits the top of the ramp

    def test_bounds_reported(self):
        text = scatter_plot(np.array([2 + 3j]), width=21, height=11)
        assert "I:" in text and "Q:" in text

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            scatter_plot(np.zeros(0, dtype=complex))

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigurationError):
            scatter_plot(np.ones(3, dtype=complex), width=5, height=3)


class TestLinePlot:
    def test_single_series(self):
        text = line_plot([("sine", np.sin(np.linspace(0, 6, 50)))],
                         width=40, height=10, title="wave")
        assert "wave" in text and "o sine" in text

    def test_multiple_series_distinct_markers(self):
        a = np.linspace(0, 1, 30)
        text = line_plot([("up", a), ("down", 1 - a)], width=40, height=10)
        assert "o up" in text and "x down" in text
        assert "o" in text and "x" in text

    def test_custom_x_axis(self):
        text = line_plot(
            [("rate", np.array([0.1, 0.5, 0.9]))],
            x_values=np.array([7.0, 12.0, 17.0]),
            width=30, height=8,
        )
        assert text  # renders without error

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            line_plot([])


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") * 2 == lines[1].count("#")

    def test_labels_aligned(self):
        text = bar_chart(["short", "a-much-longer-label"], [1, 1])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["x"], [-1.0])

    def test_rejects_mismatched(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["x"], [1.0, 2.0])
