"""Tests for the ZigBee transmitter chain."""

import numpy as np
import pytest

from repro.errors import FramingError
from repro.zigbee.constants import CHIPS_PER_SYMBOL
from repro.zigbee.frame import MacFrame
from repro.zigbee.transmitter import ZigBeeTransmitter


class TestTransmitter:
    def test_sample_rate_default(self):
        assert ZigBeeTransmitter().sample_rate_hz == 4e6

    def test_symbol_chip_sample_accounting(self):
        result = ZigBeeTransmitter().transmit_payload(b"abc")
        assert result.chips.size == result.symbols.size * CHIPS_PER_SYMBOL
        # 2 samples per chip plus the Q-rail tail.
        assert len(result.waveform) == result.chips.size * 2 + 2

    def test_ppdu_matches_symbols(self):
        result = ZigBeeTransmitter().transmit_payload(b"abc")
        from repro.zigbee.frame import bytes_to_symbols

        assert np.array_equal(result.symbols, bytes_to_symbols(result.ppdu))

    def test_unit_envelope(self):
        result = ZigBeeTransmitter().transmit_payload(b"power-check")
        envelope = np.abs(result.waveform.samples[4:-4])
        assert np.allclose(envelope, 1.0, atol=1e-9)

    def test_transmit_symbols_raw(self):
        result = ZigBeeTransmitter().transmit_symbols([0, 15, 7])
        assert result.symbols.size == 3
        assert result.ppdu == b""

    def test_sequence_number_propagates(self):
        result = ZigBeeTransmitter().transmit_payload(b"x", sequence_number=99)
        frame = MacFrame.from_bytes(result.ppdu[6:])
        assert frame.sequence_number == 99

    def test_oversized_payload_rejected(self):
        with pytest.raises(FramingError):
            ZigBeeTransmitter().transmit_payload(bytes(130))

    def test_higher_oversampling(self):
        tx = ZigBeeTransmitter(samples_per_chip=4)
        assert tx.sample_rate_hz == 8e6
        result = tx.transmit_payload(b"hi")
        assert len(result.waveform) == result.chips.size * 4 + 4
