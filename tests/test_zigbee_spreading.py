"""Tests for DSSS spreading and threshold despreading."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DecodingError
from repro.zigbee.chips import chips_for_symbol
from repro.zigbee.spreading import DsssDespreader, spread_symbols


class TestSpreading:
    def test_single_symbol(self):
        chips = spread_symbols([5])
        assert np.array_equal(chips, chips_for_symbol(5))

    def test_concatenation(self):
        chips = spread_symbols([1, 2])
        assert chips.size == 64
        assert np.array_equal(chips[:32], chips_for_symbol(1))
        assert np.array_equal(chips[32:], chips_for_symbol(2))

    def test_empty(self):
        assert spread_symbols([]).size == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            spread_symbols([16])


class TestDespreading:
    def test_perfect_roundtrip(self):
        despreader = DsssDespreader()
        symbols = list(range(16))
        decoded, distances = despreader.decode_symbols(spread_symbols(symbols))
        assert decoded == symbols
        assert distances == [0] * 16

    def test_tolerates_errors_within_threshold(self):
        despreader = DsssDespreader(correlation_threshold=5)
        chips = spread_symbols([7]).copy()
        chips[[0, 5, 9, 20, 31]] ^= 1  # five chip errors
        decision = despreader.despread_sequence(chips)
        assert decision.symbol == 7
        assert decision.hamming_distance == 5
        assert decision.accepted

    def test_drops_beyond_threshold(self):
        despreader = DsssDespreader(correlation_threshold=3)
        chips = spread_symbols([7]).copy()
        chips[:5] ^= 1
        decision = despreader.despread_sequence(chips)
        assert decision.symbol is None
        assert not decision.accepted

    def test_runner_up_distance_exceeds_best(self):
        despreader = DsssDespreader()
        decision = despreader.despread_sequence(spread_symbols([3]))
        assert decision.runner_up_distance >= decision.hamming_distance
        assert decision.runner_up_distance >= 12  # table min distance

    def test_rejects_partial_sequence(self):
        despreader = DsssDespreader()
        with pytest.raises(ConfigurationError):
            despreader.despread_sequence(np.zeros(31, dtype=np.uint8))

    def test_rejects_ragged_stream(self):
        despreader = DsssDespreader()
        with pytest.raises(DecodingError):
            despreader.despread(np.zeros(33, dtype=np.uint8))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            DsssDespreader(correlation_threshold=33)

    @given(
        st.integers(0, 15),
        st.lists(st.integers(0, 31), min_size=0, max_size=5, unique=True),
    )
    def test_decodes_with_up_to_five_errors(self, symbol, error_positions):
        """min distance 12 -> up to 5 errors always decode correctly."""
        despreader = DsssDespreader(correlation_threshold=10)
        chips = spread_symbols([symbol]).copy()
        for position in error_positions:
            chips[position] ^= 1
        decision = despreader.despread_sequence(chips)
        assert decision.symbol == symbol
        assert decision.hamming_distance == len(error_positions)
