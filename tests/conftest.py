"""Shared fixtures.

Expensive artifacts (modulated frames, emulation runs) are produced once
per session: they are deterministic, and dozens of tests only need to
*read* them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack.emulator import WaveformEmulationAttack
from repro.experiments.common import prepare_authentic, prepare_emulated
from repro.zigbee.receiver import ReceiverConfig, ZigBeeReceiver
from repro.zigbee.transmitter import ZigBeeTransmitter


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def transmitter() -> ZigBeeTransmitter:
    return ZigBeeTransmitter()


@pytest.fixture(scope="session")
def receiver() -> ZigBeeReceiver:
    return ZigBeeReceiver()


@pytest.fixture(scope="session")
def quadrature_receiver() -> ZigBeeReceiver:
    return ZigBeeReceiver(ReceiverConfig(demodulation="quadrature"))


@pytest.fixture(scope="session")
def authentic_link():
    """A transmitted frame plus its 20 Msps air waveform."""
    return prepare_authentic(b"00042")


@pytest.fixture(scope="session")
def emulated_link():
    """The same frame after the waveform emulation attack."""
    return prepare_emulated(b"00042", rng=7)


@pytest.fixture(scope="session")
def emulation_result(emulated_link):
    return emulated_link.emulation


@pytest.fixture(scope="session")
def attack() -> WaveformEmulationAttack:
    return WaveformEmulationAttack(rng=7)
