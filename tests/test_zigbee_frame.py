"""Tests for PHY/MAC framing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FramingError
from repro.zigbee.constants import MAX_PSDU_BYTES, SFD_BYTE
from repro.zigbee.frame import (
    MacFrame,
    PhyFrame,
    bytes_to_symbols,
    symbols_to_bytes,
)


class TestSymbolSerialization:
    def test_low_nibble_first(self):
        symbols = bytes_to_symbols(b"\xa7")
        assert list(symbols) == [0x7, 0xA]

    @given(st.binary(max_size=64))
    def test_roundtrip(self, data):
        assert symbols_to_bytes(bytes_to_symbols(data)) == data


class TestPhyFrame:
    def test_ppdu_layout(self):
        frame = PhyFrame(psdu=b"\x11\x22")
        ppdu = frame.to_bytes()
        assert ppdu[:4] == bytes(4)
        assert ppdu[4] == SFD_BYTE
        assert ppdu[5] == 2
        assert ppdu[6:] == b"\x11\x22"

    def test_symbol_count(self):
        frame = PhyFrame(psdu=b"\x11\x22\x33")
        assert frame.to_symbols().size == 2 * (4 + 1 + 1 + 3)

    def test_parse_roundtrip(self):
        frame = PhyFrame(psdu=bytes(range(20)))
        parsed = PhyFrame.from_symbols(frame.to_symbols())
        assert parsed.psdu == frame.psdu

    def test_parse_tolerates_trailing_symbols(self):
        frame = PhyFrame(psdu=b"abc")
        symbols = list(frame.to_symbols()) + [0, 0, 0, 0]
        assert PhyFrame.from_symbols(symbols).psdu == b"abc"

    def test_rejects_empty_psdu(self):
        with pytest.raises(FramingError):
            PhyFrame(psdu=b"")

    def test_rejects_oversized_psdu(self):
        with pytest.raises(FramingError):
            PhyFrame(psdu=bytes(MAX_PSDU_BYTES + 1))

    def test_parse_rejects_bad_sfd(self):
        frame = PhyFrame(psdu=b"abc")
        symbols = list(frame.to_symbols())
        symbols[8] ^= 0xF  # corrupt first SFD nibble
        with pytest.raises(FramingError):
            PhyFrame.from_symbols(symbols)

    def test_parse_rejects_truncated_psdu(self):
        frame = PhyFrame(psdu=b"abcdef")
        symbols = list(frame.to_symbols())[:-4]
        with pytest.raises(FramingError):
            PhyFrame.from_symbols(symbols)

    def test_parse_rejects_bad_preamble(self):
        frame = PhyFrame(psdu=b"abc")
        symbols = list(frame.to_symbols())
        symbols[0] = 5
        with pytest.raises(FramingError):
            PhyFrame.from_symbols(symbols)


class TestMacFrame:
    def test_roundtrip(self):
        frame = MacFrame(payload=b"hello", sequence_number=9)
        parsed = MacFrame.from_bytes(frame.to_bytes())
        assert parsed == frame

    def test_fcs_is_appended(self):
        frame = MacFrame(payload=b"x")
        assert len(frame.to_bytes()) == 9 + 1 + 2

    def test_corruption_detected(self):
        raw = bytearray(MacFrame(payload=b"hello").to_bytes())
        raw[3] ^= 0xFF
        with pytest.raises(FramingError):
            MacFrame.from_bytes(bytes(raw))

    def test_rejects_oversized_payload(self):
        with pytest.raises(FramingError):
            MacFrame(payload=bytes(130)).to_bytes()

    def test_rejects_bad_field(self):
        with pytest.raises(FramingError):
            MacFrame(payload=b"", sequence_number=256)

    def test_rejects_short_frame(self):
        with pytest.raises(FramingError):
            MacFrame.from_bytes(b"\x00\x00")

    @given(st.binary(min_size=0, max_size=100), st.integers(0, 255))
    def test_roundtrip_property(self, payload, seq):
        frame = MacFrame(payload=payload, sequence_number=seq)
        assert MacFrame.from_bytes(frame.to_bytes()) == frame
