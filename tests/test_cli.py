"""Tests for the experiment CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig14" in out

    def test_run_table3(self, capsys):
        assert main(["run", "table3", "--trials", "2000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "QPSK" in out
        assert "finished" in out

    def test_run_table1_with_seed(self, capsys):
        assert main(["run", "table1", "--seed", "3"]) == 0
        assert "selected FFT bins" in capsys.readouterr().out

    def test_save_writes_csv_and_npz(self, tmp_path, capsys):
        directory = str(tmp_path / "results")
        assert main(["run", "table1", "--seed", "2", "--save", directory]) == 0
        csv_file = tmp_path / "results" / "table1.csv"
        npz_file = tmp_path / "results" / "table1.npz"
        assert csv_file.exists()
        assert npz_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("index,")
        import numpy as np

        data = np.load(npz_file)
        assert "selected_bins" in data

    def test_unknown_experiment_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "table42"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
