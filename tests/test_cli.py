"""Tests for the experiment CLI."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig14" in out

    def test_run_table3(self, capsys):
        assert main(["run", "table3", "--trials", "2000", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "QPSK" in out
        assert "finished" in out

    def test_run_table1_with_seed(self, capsys):
        assert main(["run", "table1", "--seed", "3"]) == 0
        assert "selected FFT bins" in capsys.readouterr().out

    def test_save_writes_csv_and_npz(self, tmp_path, capsys):
        directory = str(tmp_path / "results")
        assert main(["run", "table1", "--seed", "2", "--save", directory]) == 0
        csv_file = tmp_path / "results" / "table1.csv"
        npz_file = tmp_path / "results" / "table1.npz"
        assert csv_file.exists()
        assert npz_file.exists()
        header = csv_file.read_text().splitlines()[0]
        assert header.startswith("index,")
        import numpy as np

        data = np.load(npz_file)
        assert "selected_bins" in data

    def test_unknown_experiment_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run", "table42"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_json_flag_prints_machine_readable_rows(self, capsys):
        import json

        assert main(["run", "table3", "--trials", "2000", "--seed", "1",
                     "--json"]) == 0
        out = capsys.readouterr().out.strip()
        payload = json.loads(out)
        assert payload["experiment_id"] == "table3"
        assert "modulation" in payload["columns"]
        assert any(row["modulation"] == "QPSK" for row in payload["rows"])

    def test_save_writes_manifest(self, tmp_path, capsys):
        from repro.telemetry import read_manifest

        directory = str(tmp_path / "results")
        assert main(["run", "table1", "--seed", "5", "--save", directory]) == 0
        manifest = read_manifest(tmp_path / "results" / "table1.manifest.json")
        assert manifest["seed"] == 5
        assert manifest["config"]["experiment_id"] == "table1"
        assert "package_version" in manifest

    def test_telemetry_out_and_report_round_trip(self, tmp_path, capsys):
        import json

        out_file = str(tmp_path / "t.json")
        assert main(["run", "table1", "--seed", "2", "--telemetry",
                     "--telemetry-out", out_file,
                     "--runs-dir", str(tmp_path / "runs")]) == 0
        capsys.readouterr()
        payload = json.loads((tmp_path / "t.json").read_text())
        assert "spans" in payload and "metrics" in payload
        assert payload["manifest"]["seed"] == 2
        names = [c["name"] for c in payload["spans"]["children"]]
        assert "experiment.table1" in names

        assert main(["report", out_file]) == 0
        rendered = capsys.readouterr().out
        assert "experiment.table1" in rendered
        assert "seed: 2" in rendered

    def test_telemetry_without_out_prints_summary(self, tmp_path, capsys):
        assert main(["run", "table1", "--seed", "1", "--telemetry",
                     "--runs-dir", str(tmp_path / "runs")]) == 0
        out = capsys.readouterr().out
        assert "experiment.table1" in out
        assert "stage wall-clock" in out
        assert "[run directory:" in out

    def test_telemetry_disabled_after_run(self, tmp_path):
        from repro.telemetry import get_event_stream, get_telemetry

        assert main(["run", "table1", "--seed", "1", "--telemetry",
                     "--runs-dir", str(tmp_path / "runs")]) == 0
        assert not get_telemetry().enabled
        assert not get_event_stream().enabled


class TestFaultToleranceFlags:
    def test_resume_without_checkpoint_dir_is_an_error(self, capsys):
        assert main(["run", "table1", "--resume"]) == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_workers_rejects_non_integer_strings(self):
        with pytest.raises(SystemExit):
            main(["run", "table2", "--workers", "many"])

    def test_workers_auto_and_on_error_accepted(self, capsys):
        import json

        assert main(["run", "table2", "--trials", "2", "--seed", "1",
                     "--workers", "auto", "--on-error", "retry",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["experiment_id"] == "table2"

    def test_checkpoint_then_resume_round_trip(self, tmp_path, capsys):
        import json

        directory = str(tmp_path / "ckpt")
        base = ["run", "table2", "--trials", "2", "--seed", "4", "--json",
                "--checkpoint-dir", directory]
        assert main(base) == 0
        first = json.loads(capsys.readouterr().out.strip())
        assert main(base + ["--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out.strip())
        assert resumed["rows"] == first["rows"]
        assert (tmp_path / "ckpt" / "table2" / "meta.json").exists()


class TestLintSubcommand:
    def test_lint_flags_violations(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
        assert main(["lint", str(tmp_path)]) == 1
        assert "R001" in capsys.readouterr().out

    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "R001" in out and "R006" in out
