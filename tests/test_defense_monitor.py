"""Tests for the online attack monitor."""

import numpy as np
import pytest

from repro.defense.detector import CumulantDetector
from repro.defense.monitor import AttackMonitor
from repro.defense.sequential import SequentialDecision, SequentialDetector
from repro.errors import ConfigurationError
from repro.zigbee.receiver import ZigBeeReceiver


@pytest.fixture(scope="module")
def authentic_packet(authentic_link):
    return ZigBeeReceiver().receive(authentic_link.on_air)


@pytest.fixture(scope="module")
def attack_packet(emulated_link):
    return ZigBeeReceiver().receive(emulated_link.on_air)


class TestPerPacketMode:
    def test_authentic_packet_no_alert(self, authentic_packet):
        monitor = AttackMonitor()
        assert monitor.observe(authentic_packet) is None
        source = authentic_packet.mac_frame.source
        assert monitor.verdict_for(source) is None

    def test_attack_packet_alerts(self, attack_packet):
        monitor = AttackMonitor()
        alert = monitor.observe(attack_packet)
        assert alert is not None
        assert alert.decision is SequentialDecision.ATTACK
        assert alert.last_statistic > monitor.detector.threshold

    def test_sticky_source_alerts_once(self, attack_packet):
        monitor = AttackMonitor(sticky=True)
        assert monitor.observe(attack_packet) is not None
        assert monitor.observe(attack_packet) is None  # frozen

    def test_non_sticky_alerts_every_time(self, attack_packet):
        monitor = AttackMonitor(sticky=False)
        assert monitor.observe(attack_packet) is not None
        assert monitor.observe(attack_packet) is not None

    def test_reset_clears_state(self, attack_packet):
        monitor = AttackMonitor()
        monitor.observe(attack_packet)
        source = attack_packet.mac_frame.source
        monitor.reset(source)
        assert monitor.verdict_for(source) is None

    def test_statistics_recorded_per_source(self, authentic_packet):
        monitor = AttackMonitor()
        monitor.observe(authentic_packet)
        monitor.observe(authentic_packet)
        source = authentic_packet.mac_frame.source
        assert len(monitor.sources[source].statistics) == 2

    def test_rejects_bad_configuration(self):
        with pytest.raises(ConfigurationError):
            AttackMonitor(chip_source="telepathy")
        with pytest.raises(ConfigurationError):
            AttackMonitor(min_chips=2)


class TestSequentialMode:
    def _sequential(self):
        return SequentialDetector(
            h0_log_mean=np.log(0.001), h1_log_mean=np.log(0.06), log_std=1.0
        )

    def test_attack_resolves_after_a_few_packets(self, attack_packet):
        monitor = AttackMonitor(sequential=self._sequential())
        alert = None
        for _ in range(10):
            alert = monitor.observe(attack_packet)
            if alert is not None:
                break
        assert alert is not None
        assert alert.decision is SequentialDecision.ATTACK
        assert alert.packets_observed <= 10

    def test_authentic_resolves_h0_silently(self, authentic_packet):
        monitor = AttackMonitor(sequential=self._sequential())
        for _ in range(10):
            assert monitor.observe(authentic_packet) is None
        source = authentic_packet.mac_frame.source
        assert monitor.verdict_for(source) is SequentialDecision.AUTHENTIC

    def test_matched_filter_source_with_noise_correction(self, attack_packet):
        monitor = AttackMonitor(
            detector=CumulantDetector(use_abs_c40=True),
            chip_source="matched_filter",
            noise_corrected=True,
            sticky=False,
        )
        alert = monitor.observe(attack_packet)
        assert alert is not None
