"""Tests for messages, metrics, and the end-to-end link stacks."""

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel
from repro.errors import ConfigurationError
from repro.link.messages import iter_messages, paper_text_corpus
from repro.link.metrics import ErrorRateAccumulator, symbol_errors
from repro.link.stack import EmulationAttackLink, ZigBeeDirectLink


class TestMessages:
    def test_paper_corpus(self):
        corpus = paper_text_corpus()
        assert len(corpus) == 100
        assert corpus[0] == b"00000"
        assert corpus[-1] == b"00099"

    def test_custom_width(self):
        corpus = paper_text_corpus(count=3, width=3)
        assert corpus == [b"000", b"001", b"002"]

    def test_iter_matches_list(self):
        assert list(iter_messages(5)) == paper_text_corpus(5)

    def test_rejects_overflow(self):
        with pytest.raises(ConfigurationError):
            paper_text_corpus(count=11, width=1)


class TestMetrics:
    def test_symbol_errors_counts_mismatches(self):
        assert symbol_errors([1, 2, 3], [1, 0, 3]) == 1

    def test_none_counts_as_error(self):
        assert symbol_errors([1, 2], [1, None]) == 1

    def test_short_decode_counts_missing(self):
        assert symbol_errors([1, 2, 3], [1]) == 2

    def test_extra_decoded_symbols_count_as_errors(self):
        # Spurious decodes beyond the truth length are errors, not noise.
        assert symbol_errors([1, 2], [1, 2, 9]) == 1
        assert symbol_errors([1, 2], [1, 2, 9, 7]) == 2
        assert symbol_errors([1, 2], [1, 0, 9]) == 2

    def test_extra_none_entries_are_not_errors(self):
        # A trailing None is an absent decode, not a spurious symbol.
        assert symbol_errors([1, 2], [1, 2, None]) == 0

    def test_accumulator_rates(self):
        acc = ErrorRateAccumulator()
        acc.record([1, 2, 3, 4], [1, 2, 3, 4], packet_ok=True)
        acc.record([1, 2, 3, 4], [1, 0, 3, 4], packet_ok=False, hamming=[0, 5, 0, 0])
        assert acc.packet_error_rate == pytest.approx(0.5)
        assert acc.symbol_error_rate == pytest.approx(1 / 8)
        assert acc.success_rate == pytest.approx(0.5)

    def test_record_lost(self):
        acc = ErrorRateAccumulator()
        acc.record_lost(10)
        assert acc.packet_error_rate == 1.0
        assert acc.symbol_error_rate == 1.0

    def test_hamming_histogram_normalized(self):
        acc = ErrorRateAccumulator()
        acc.record([1], [1], True, hamming=[0, 0, 4, 4, 8])
        histogram = acc.hamming_histogram()
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram[0] == pytest.approx(0.4)
        assert histogram[4] == pytest.approx(0.4)

    def test_empty_accumulator_raises(self):
        with pytest.raises(ConfigurationError):
            _ = ErrorRateAccumulator().packet_error_rate


class TestLinks:
    def test_direct_link_clean(self):
        outcome = ZigBeeDirectLink().send(b"clean-link")
        assert outcome.delivered
        assert outcome.psdu_symbol_errors == 0

    def test_direct_link_noisy(self):
        outcome = ZigBeeDirectLink().send(
            b"noisy-link", channel=AwgnChannel(12, rng=0)
        )
        assert outcome.delivered

    def test_attack_link_delivers_and_reports_emulation(self):
        outcome = EmulationAttackLink().send(b"attack-link")
        assert outcome.delivered
        assert outcome.emulation is not None
        assert outcome.hamming_distances
        assert max(outcome.hamming_distances) >= 1

    def test_attack_link_under_noise(self):
        outcome = EmulationAttackLink().send(
            b"attack-noisy", channel=AwgnChannel(15, rng=1)
        )
        assert outcome.delivered

    def test_lost_packet_counts_all_symbol_errors(self):
        # Massive noise: sync fails -> outcome not synchronized.
        outcome = ZigBeeDirectLink().send(
            b"lost", channel=AwgnChannel(-25, rng=2)
        )
        if not outcome.synchronized:
            assert outcome.psdu_symbol_errors == outcome.truth_psdu_symbols.size
        else:
            assert not outcome.delivered

    def test_send_frame_roundtrip(self):
        from repro.zigbee.frame import MacFrame

        frame = MacFrame(payload=b"explicit", sequence_number=77)
        outcome = ZigBeeDirectLink().send_frame(frame)
        assert outcome.delivered
        assert outcome.packet.mac_frame.sequence_number == 77

    def test_front_ends_applied(self):
        from repro.hardware.frontend import FrontEnd, FrontEndConfig

        link = ZigBeeDirectLink(
            tx_front_end=FrontEnd(FrontEndConfig(gain=0.75), rng=0),
            rx_front_end=FrontEnd(FrontEndConfig(), rng=1),
        )
        outcome = link.send(b"hardware")
        assert outcome.delivered
