"""Tests for moments/cumulants estimation and the Table III values."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defense.amc import synthesize_symbols
from repro.defense.moments import (
    estimate_cumulants,
    reference_constellations,
    theoretical_cumulants,
    theoretical_table,
)
from repro.errors import ConfigurationError

#: Printed Table III values.
PAPER_VALUES = {
    "BPSK": (1.0, -2.0000, -2.0000),
    "QPSK": (0.0, 1.0000, -1.0000),
    "8PSK": (0.0, 0.0000, -1.0000),
    "4PAM": (1.0, -1.3600, -1.3600),
    "8PAM": (1.0, -1.2381, -1.2381),
    "16PAM": (1.0, -1.2094, -1.2094),
    "16QAM": (0.0, -0.6800, -0.6800),
    "64QAM": (0.0, -0.6190, -0.6190),
    "256QAM": (0.0, -0.6047, -0.6047),
}


class TestTheoreticalTable:
    @pytest.mark.parametrize("name", sorted(PAPER_VALUES))
    def test_matches_paper_table3(self, name):
        c20, c40, c42 = theoretical_cumulants(name)
        paper_c20, paper_c40, paper_c42 = PAPER_VALUES[name]
        assert np.real(c20) == pytest.approx(paper_c20, abs=1e-4)
        assert np.real(c40) == pytest.approx(paper_c40, abs=1e-4)
        assert c42 == pytest.approx(paper_c42, abs=1e-4)

    def test_all_constellations_unit_power(self):
        for name, points in reference_constellations().items():
            assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0), name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            theoretical_cumulants("32APSK")

    def test_table_complete(self):
        assert set(theoretical_table()) == set(PAPER_VALUES)


class TestSampleEstimation:
    @pytest.mark.parametrize("name", ["QPSK", "16QAM", "64QAM", "BPSK"])
    def test_noiseless_estimates_converge(self, name):
        symbols = synthesize_symbols(name, 50000, rng=0)
        estimate = estimate_cumulants(symbols)
        _, c40, c42 = theoretical_cumulants(name)
        assert np.real(estimate.c40_hat) == pytest.approx(np.real(c40), abs=0.03)
        assert estimate.c42_hat == pytest.approx(c42, abs=0.03)

    def test_gaussian_noise_has_zero_fourth_cumulants(self):
        rng = np.random.default_rng(0)
        noise = (rng.standard_normal(200000) + 1j * rng.standard_normal(200000))
        noise /= np.sqrt(2)
        estimate = estimate_cumulants(noise)
        assert abs(estimate.c40_hat) < 0.05
        assert abs(estimate.c42_hat) < 0.05

    def test_noise_correction_recovers_clean_statistics(self):
        """The paper's Sec. VI-B2 noise subtraction removes the SNR bias."""
        snr_db = 7.0
        noise_var = 10 ** (-snr_db / 10)
        symbols = synthesize_symbols("QPSK", 100000, snr_db=snr_db, rng=1)
        biased = estimate_cumulants(symbols)
        corrected = estimate_cumulants(symbols, noise_variance=noise_var)
        assert abs(np.real(corrected.c40_hat) - 1.0) < 0.05
        # Without correction, the estimate is biased low by (1+N)^-2 ~ 0.69.
        assert np.real(biased.c40_hat) < 0.8

    def test_rotation_rotates_c40_not_c42(self):
        symbols = synthesize_symbols("QPSK", 20000, rng=2)
        rotated = symbols * np.exp(1j * 0.3)
        a = estimate_cumulants(symbols)
        b = estimate_cumulants(rotated)
        assert abs(b.c40_hat) == pytest.approx(abs(a.c40_hat), abs=0.01)
        assert np.angle(b.c40_hat) == pytest.approx(
            np.angle(a.c40_hat) + 4 * 0.3, abs=0.02
        )
        assert b.c42_hat == pytest.approx(a.c42_hat, abs=0.01)

    def test_scale_invariance_of_normalized_cumulants(self):
        symbols = synthesize_symbols("16QAM", 20000, rng=3)
        a = estimate_cumulants(symbols)
        b = estimate_cumulants(4.2 * symbols)
        assert np.real(b.c40_hat) == pytest.approx(np.real(a.c40_hat), rel=1e-9)
        assert b.c42_hat == pytest.approx(a.c42_hat, rel=1e-9)

    def test_rejects_tiny_sample(self):
        with pytest.raises(ConfigurationError):
            estimate_cumulants(np.ones(3, dtype=complex))

    def test_rejects_excess_noise_variance(self):
        symbols = synthesize_symbols("QPSK", 100, rng=4)
        with pytest.raises(ConfigurationError):
            estimate_cumulants(symbols, noise_variance=10.0)

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["QPSK", "16QAM", "64QAM"]),
           st.floats(min_value=0.1, max_value=3.0))
    def test_scale_invariance_property(self, name, scale):
        symbols = synthesize_symbols(name, 4000, rng=0)
        a = estimate_cumulants(symbols)
        b = estimate_cumulants(scale * symbols)
        assert b.c42_hat == pytest.approx(a.c42_hat, rel=1e-6)
