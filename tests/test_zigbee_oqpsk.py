"""Tests for half-sine pulses and the O-QPSK modem."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, DecodingError
from repro.zigbee.halfsine import half_sine_pulse, pulse_energy, shape_rail
from repro.zigbee.oqpsk import (
    ChipSamples,
    OqpskDemodulator,
    OqpskModulator,
    chips_to_constellation,
)


class TestHalfSine:
    def test_pulse_length(self):
        assert half_sine_pulse(2).size == 4
        assert half_sine_pulse(8).size == 16

    def test_pulse_symmetric(self):
        pulse = half_sine_pulse(4)
        assert np.allclose(pulse, pulse[::-1])

    def test_pulse_peak_near_one(self):
        assert half_sine_pulse(16).max() <= 1.0
        assert half_sine_pulse(16).max() > 0.99

    def test_energy_positive(self):
        assert pulse_energy(2) > 0

    def test_shape_rail_no_overlap(self):
        shaped = shape_rail(np.array([1.0, -1.0]), 2)
        pulse = half_sine_pulse(2)
        assert np.allclose(shaped[:4], pulse)
        assert np.allclose(shaped[4:], -pulse)

    def test_rejects_bad_sps(self):
        with pytest.raises(ConfigurationError):
            half_sine_pulse(0)


class TestModulator:
    def test_output_length(self):
        mod = OqpskModulator(2)
        waveform = mod.modulate([0, 1] * 16)
        assert waveform.size == 32 * 2 + 2

    def test_sample_rate(self):
        assert OqpskModulator(2).sample_rate_hz == 4e6
        assert OqpskModulator(4).sample_rate_hz == 8e6

    def test_constant_envelope_in_steady_state(self):
        mod = OqpskModulator(2)
        rng = np.random.default_rng(0)
        waveform = mod.modulate(rng.integers(0, 2, 128))
        envelope = np.abs(waveform[2:-2])
        assert np.allclose(envelope, 1.0, atol=1e-12)

    def test_rejects_odd_chip_count(self):
        with pytest.raises(ConfigurationError):
            OqpskModulator(2).modulate([0, 1, 0])

    def test_rejects_non_binary(self):
        with pytest.raises(ConfigurationError):
            OqpskModulator(2).modulate([0, 2])

    def test_empty_input(self):
        assert OqpskModulator(2).modulate([]).size == 0


class TestDemodulator:
    @pytest.mark.parametrize("sps", [2, 4, 8])
    def test_noiseless_roundtrip(self, sps):
        rng = np.random.default_rng(42)
        chips = rng.integers(0, 2, 64)
        waveform = OqpskModulator(sps).modulate(chips)
        result = OqpskDemodulator(sps).demodulate(
            waveform, 64, phase_tracking=False
        )
        assert np.array_equal(result.hard, chips)
        assert np.allclose(np.abs(result.soft), 1.0, atol=1e-9)

    def test_phase_tracking_follows_residual_cfo(self):
        """A residual CFO that defeats the static demodulator is tracked."""
        from repro.utils.signal_ops import frequency_shift

        rng = np.random.default_rng(43)
        chips = rng.integers(0, 2, 2048)
        waveform = OqpskModulator(2).modulate(chips)
        # 400 Hz residual at 4 Msps rotates ~150 degrees over 2048 chips,
        # flipping late-packet decisions for a non-tracking demodulator.
        drifted = frequency_shift(waveform, 400.0, 4e6)
        demod = OqpskDemodulator(2)
        with_tracking = demod.demodulate(drifted, 2048, phase_tracking=True)
        without = demod.demodulate(drifted, 2048, phase_tracking=False)
        errors_tracked = np.count_nonzero(with_tracking.hard != chips)
        errors_static = np.count_nonzero(without.hard != chips)
        assert errors_tracked == 0
        assert errors_static > 20

    def test_phase_tracking_jitter_is_small_on_clean_input(self):
        rng = np.random.default_rng(44)
        chips = rng.integers(0, 2, 256)
        waveform = OqpskModulator(2).modulate(chips)
        result = OqpskDemodulator(2).demodulate(waveform, 256)
        assert np.array_equal(result.hard, chips)
        assert np.allclose(np.abs(result.soft), 1.0, atol=0.05)

    def test_soft_signs_match_chips(self):
        chips = np.array([1, 0, 0, 1] * 8)
        waveform = OqpskModulator(2).modulate(chips)
        result = OqpskDemodulator(2).demodulate(waveform, 32)
        assert np.array_equal(result.soft > 0, chips.astype(bool))

    def test_capacity(self):
        demod = OqpskDemodulator(2)
        # 32 chips need 32*2 + 2 samples.
        assert demod.capacity(66) == 32
        assert demod.capacity(65) == 30
        assert demod.capacity(0) == 0

    def test_rejects_overdraw(self):
        demod = OqpskDemodulator(2)
        with pytest.raises(DecodingError):
            demod.demodulate(np.zeros(10, dtype=complex), 32)

    def test_rejects_odd_num_chips(self):
        with pytest.raises(ConfigurationError):
            OqpskDemodulator(2).demodulate(np.zeros(100, dtype=complex), 3)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=2, max_size=64).filter(
        lambda chips: len(chips) % 2 == 0))
    def test_roundtrip_property(self, chips):
        waveform = OqpskModulator(2).modulate(chips)
        result = OqpskDemodulator(2).demodulate(waveform, len(chips))
        assert list(result.hard) == chips


class TestConstellationPairing:
    def test_pairs_alternating(self):
        points = chips_to_constellation([1.0, -1.0, -1.0, 1.0])
        assert points[0] == pytest.approx(1.0 - 1.0j)
        assert points[1] == pytest.approx(-1.0 + 1.0j)

    def test_rejects_odd_count(self):
        with pytest.raises(ConfigurationError):
            chips_to_constellation([1.0, -1.0, 1.0])
