"""Tests for reprolint's whole-program layer (rules R008-R011).

Every fixture is a miniature on-disk project: a ``pyproject.toml`` root
marker plus modules under ``src/repro/`` so role classification sees
library code.  Each rule gets one failing and one passing project, and
the surrounding machinery — the incremental cache, the baseline
ratchet, cross-module suppression, the JSON report — is exercised
through the same public entry points CI uses.
"""

import json

import pytest

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import build_parser, execute
from repro.analysis.runner import run_lint_detailed

PYPROJECT = "[project]\nname = 'lintdemo'\n"

# A scalar/batch kernel pair plus the test reference R008 wants; reused
# as the innocent bystander in other rules' fixtures.
CLEAN_KERNELS = """\
import numpy as np


def mix(samples):
    return np.asarray(samples, dtype=np.complex128)


def mix_batch(samples):
    return np.asarray(samples, dtype=np.complex128)
"""

CLEAN_KERNEL_TEST = """\
from repro.kernels import mix, mix_batch


def test_mix_batch_matches_scalar():
    assert mix_batch([1.0]) is not None and mix([1.0]) is not None
"""


def _write_project(root, files):
    (root / "pyproject.toml").write_text(PYPROJECT)
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return root


def _lint(root, **kwargs):
    kwargs.setdefault("cache_dir", None)
    return run_lint_detailed([str(root / "src"), str(root / "tests")], **kwargs)


def _codes(result):
    return sorted({diag.code for diag in result.diagnostics})


class TestBatchScalarParity:
    """R008: every batch kernel needs a scalar twin and a test anchor."""

    def test_batch_without_scalar_counterpart_fails(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/kernels.py": "def demodulate_batch(rows):\n    return rows\n",
            "tests/test_kernels.py": (
                "from repro.kernels import demodulate_batch\n\n\n"
                "def test_batch():\n    assert demodulate_batch([]) == []\n"
            ),
        })
        result = _lint(tmp_path, select=["R008"])
        assert _codes(result) == ["R008"]
        assert "scalar counterpart" in result.diagnostics[0].message

    def test_batch_pair_without_test_reference_fails(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/kernels.py": CLEAN_KERNELS,
            "tests/test_other.py": "def test_unrelated():\n    assert True\n",
        })
        result = _lint(tmp_path, select=["R008"])
        assert _codes(result) == ["R008"]
        assert "test" in result.diagnostics[0].message

    def test_explicit_counterpart_attribute_resolves(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/kernels.py": (
                "def decode(row):\n    return row\n\n\n"
                "def fast_path_batch(rows):\n    return rows\n\n\n"
                "fast_path_batch.scalar_counterpart = decode\n"
            ),
            "tests/test_kernels.py": (
                "from repro.kernels import decode, fast_path_batch\n\n\n"
                "def test_pair():\n"
                "    assert fast_path_batch([1]) == [1] and decode(1) == 1\n"
            ),
        })
        result = _lint(tmp_path, select=["R008"])
        assert result.diagnostics == []

    def test_tested_pair_passes(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/kernels.py": CLEAN_KERNELS,
            "tests/test_kernels.py": CLEAN_KERNEL_TEST,
        })
        result = _lint(tmp_path, select=["R008"])
        assert result.diagnostics == []


class TestDtypePromotionHygiene:
    """R009: no implicit float64 defaults on trial-reachable paths."""

    FIXTURE = """\
import numpy as np

from repro.experiments.engine import batch_trial


def _make_buffer(count):
    return np.zeros(count{dtype})


@batch_trial
def draw_trial(context, args, rng):
    return _make_buffer(4)
"""

    def test_dtypeless_allocation_on_trial_path_fails(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/trials.py": self.FIXTURE.format(dtype=""),
            "tests/test_trials.py": (
                "from repro.trials import _make_buffer, draw_trial\n\n\n"
                "def test_trial():\n"
                "    assert draw_trial is not None and _make_buffer is not None\n"
            ),
        })
        result = _lint(tmp_path, select=["R009"])
        assert _codes(result) == ["R009"]
        assert "trial-reachable" in result.diagnostics[0].message

    def test_explicit_dtype_passes(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/trials.py": self.FIXTURE.format(dtype=", dtype=np.float64"),
            "tests/test_trials.py": (
                "from repro.trials import _make_buffer, draw_trial\n\n\n"
                "def test_trial():\n"
                "    assert draw_trial is not None and _make_buffer is not None\n"
            ),
        })
        result = _lint(tmp_path, select=["R009"])
        assert result.diagnostics == []


EVENTS_MODULE = """\
EVENT_SCHEMAS = {
    "run_started": {"required": (), "optional": ("seed",), "open": True},
    "trial_retry": {
        "required": ("trial_index",), "optional": (), "open": False,
    },
}
"""


class TestEventSchemaDiscipline:
    """R010: every emit() matches the central declared schema."""

    def test_undeclared_event_type_fails(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/telemetry/events.py": EVENTS_MODULE,
            "src/repro/engine.py": (
                "def report(stream):\n"
                "    stream.emit('trial_vanished', trial_index=3)\n"
            ),
        })
        result = _lint(tmp_path, select=["R010"])
        assert _codes(result) == ["R010"]
        assert "trial_vanished" in result.diagnostics[0].message

    def test_undeclared_field_on_closed_schema_fails(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/telemetry/events.py": EVENTS_MODULE,
            "src/repro/engine.py": (
                "def report(stream):\n"
                "    stream.emit('trial_retry', trial_index=3, mood='grim')\n"
            ),
        })
        result = _lint(tmp_path, select=["R010"])
        assert _codes(result) == ["R010"]
        assert "mood" in result.diagnostics[0].message

    def test_missing_required_field_fails(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/telemetry/events.py": EVENTS_MODULE,
            "src/repro/engine.py": (
                "def report(stream):\n"
                "    stream.emit('trial_retry')\n"
            ),
        })
        result = _lint(tmp_path, select=["R010"])
        assert _codes(result) == ["R010"]
        assert "trial_index" in result.diagnostics[0].message

    def test_declared_emit_passes(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/telemetry/events.py": EVENTS_MODULE,
            "src/repro/engine.py": (
                "def report(stream):\n"
                "    stream.emit('trial_retry', trial_index=3)\n"
                "    stream.emit('run_started', seed=1, extra='fine')\n"
            ),
        })
        result = _lint(tmp_path, select=["R010"])
        assert result.diagnostics == []


class TestCounterCatalogue:
    """R011: counters incremented in code <-> documented catalogue."""

    CODE = (
        "def record(telemetry):\n"
        "    telemetry.count('engine.trials')\n"
    )

    @staticmethod
    def _catalogue(*names):
        lines = "\n".join(f"- `{name}` — documented." for name in names)
        return f"# Observability\n\n## Counter catalogue\n\n{lines}\n"

    def test_undocumented_counter_fails(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/engine.py": self.CODE,
            "docs/OBSERVABILITY.md": self._catalogue("engine.retries"),
        })
        result = _lint(tmp_path, select=["R011"])
        assert _codes(result) == ["R011"]
        messages = " ".join(d.message for d in result.diagnostics)
        assert "engine.trials" in messages

    def test_documented_counter_passes(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/engine.py": self.CODE,
            "docs/OBSERVABILITY.md": self._catalogue("engine.trials"),
        })
        result = _lint(tmp_path, select=["R011"])
        assert result.diagnostics == []


class TestCrossModuleSuppression:
    """Satellite: disable comments resolve against the anchor file."""

    def test_anchor_file_disable_suppresses_project_rule(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/kernels.py": (
                "def demodulate_batch(rows):"
                "  # reprolint: disable=R008\n"
                "    return rows\n"
            ),
        })
        result = _lint(tmp_path, select=["R008"])
        assert result.diagnostics == []

    def test_disable_in_another_file_does_not_leak(self, tmp_path):
        _write_project(tmp_path, {
            "src/repro/kernels.py": (
                "def demodulate_batch(rows):\n    return rows\n"
            ),
            "src/repro/other.py": "# reprolint: disable=R008\n",
        })
        result = _lint(tmp_path, select=["R008"])
        assert _codes(result) == ["R008"]


class TestIncrementalCache:
    """The cache is keyed on content: edits invalidate, re-runs hit."""

    def test_warm_run_hits_and_edit_invalidates(self, tmp_path):
        root = _write_project(tmp_path, {
            "src/repro/kernels.py": CLEAN_KERNELS,
            "tests/test_kernels.py": CLEAN_KERNEL_TEST,
        })
        cache_dir = str(tmp_path / ".repro-lint-cache")
        cold = _lint(root, cache_dir=cache_dir)
        assert (cold.cache_hits, cold.cache_misses) == (0, 2)
        warm = _lint(root, cache_dir=cache_dir)
        assert (warm.cache_hits, warm.cache_misses) == (2, 0)

        kernels = root / "src" / "repro" / "kernels.py"
        kernels.write_text(kernels.read_text() + "\n\nEXTRA = 1\n")
        edited = _lint(root, cache_dir=cache_dir)
        assert (edited.cache_hits, edited.cache_misses) == (1, 1)

    def test_cached_run_still_reports_project_violations(self, tmp_path):
        """Project rules re-run from cached summaries — a second lint
        must not lose cross-module diagnostics to the cache."""
        root = _write_project(tmp_path, {
            "src/repro/kernels.py": "def demodulate_batch(rows):\n    return rows\n",
        })
        cache_dir = str(tmp_path / ".repro-lint-cache")
        cold = _lint(root, cache_dir=cache_dir, select=["R008"])
        warm = _lint(root, cache_dir=cache_dir, select=["R008"])
        assert _codes(cold) == _codes(warm) == ["R008"]
        assert warm.cache_hits == 1

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        root = _write_project(tmp_path, {
            "src/repro/kernels.py": CLEAN_KERNELS,
            "tests/test_kernels.py": CLEAN_KERNEL_TEST,
        })
        cache_dir = tmp_path / ".repro-lint-cache"
        _lint(root, cache_dir=str(cache_dir))
        for entry in cache_dir.glob("*.json"):
            entry.write_text("{not json")
        rerun = _lint(root, cache_dir=str(cache_dir))
        assert (rerun.cache_hits, rerun.cache_misses) == (0, 2)


class TestBaselineRatchet:
    """Adopt existing debt, stay green, fail only on new violations."""

    def test_adopt_then_green_then_new_violation_fails(self, tmp_path):
        root = _write_project(tmp_path, {
            "src/repro/kernels.py": "def demodulate_batch(rows):\n    return rows\n",
        })
        baseline_path = tmp_path / "reprolint-baseline.json"

        dirty = _lint(root, select=["R008"])
        assert _codes(dirty) == ["R008"]
        adopted = write_baseline(str(baseline_path), dirty.diagnostics)
        assert adopted == len(dirty.diagnostics)

        budget = load_baseline(str(baseline_path))
        clean = _lint(root, select=["R008"], baseline=budget)
        assert clean.diagnostics == []
        assert clean.baselined == len(dirty.diagnostics)

        kernels = root / "src" / "repro" / "kernels.py"
        kernels.write_text(
            kernels.read_text() + "\n\ndef resample_batch(rows):\n    return rows\n"
        )
        budget = load_baseline(str(baseline_path))
        regressed = _lint(root, select=["R008"], baseline=budget)
        assert _codes(regressed) == ["R008"]
        assert all("resample_batch" in d.message for d in regressed.diagnostics)

    def test_baseline_matches_despite_line_drift(self, tmp_path):
        root = _write_project(tmp_path, {
            "src/repro/kernels.py": "def demodulate_batch(rows):\n    return rows\n",
        })
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            str(baseline_path), _lint(root, select=["R008"]).diagnostics
        )
        kernels = root / "src" / "repro" / "kernels.py"
        kernels.write_text("# a new leading comment\n" + kernels.read_text())
        budget = load_baseline(str(baseline_path))
        drifted = _lint(root, select=["R008"], baseline=budget)
        assert drifted.diagnostics == []

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 1, "entries": [{"path": "x"}]}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestCliSurface:
    """The flag plumbing: exit codes, JSON schema, unknown codes."""

    def _run(self, argv):
        return execute(build_parser().parse_args(argv))

    def test_unknown_select_code_exits_2(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        code = self._run([str(tmp_path), "--select", "R999", "--no-cache"])
        assert code == 2
        assert "R999" in capsys.readouterr().err

    def test_unknown_ignore_code_exits_2(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        code = self._run([str(tmp_path), "--ignore", "R008,R999", "--no-cache"])
        assert code == 2
        assert "R999" in capsys.readouterr().err

    def test_json_report_carries_cross_module_diagnostics(
        self, tmp_path, capsys
    ):
        _write_project(tmp_path, {
            "src/repro/kernels.py": "def demodulate_batch(rows):\n    return rows\n",
        })
        code = self._run([
            str(tmp_path / "src"), "--select", "R008",
            "--format", "json", "--no-cache",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["summary"]["violations"] == len(payload["diagnostics"])
        (diag,) = [d for d in payload["diagnostics"] if d["code"] == "R008"]
        assert diag["path"].endswith("kernels.py")
        assert set(diag) >= {"path", "line", "column", "code", "message"}
        summary = payload["summary"]
        assert {"cache_hits", "cache_misses", "baselined"} <= set(summary)

    def test_write_then_apply_baseline_through_cli(self, tmp_path, capsys):
        _write_project(tmp_path, {
            "src/repro/kernels.py": "def demodulate_batch(rows):\n    return rows\n",
        })
        baseline = str(tmp_path / "baseline.json")
        target = str(tmp_path / "src")

        assert self._run([target, "--no-cache"]) == 1
        capsys.readouterr()
        assert self._run([target, "--no-cache", "--write-baseline", baseline]) == 0
        assert "adopted" in capsys.readouterr().out
        assert self._run([target, "--no-cache", "--baseline", baseline]) == 0
        assert "baselined" in capsys.readouterr().out

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[]")
        code = self._run([
            str(tmp_path), "--no-cache", "--baseline", str(baseline)
        ])
        assert code == 2
        assert "baseline" in capsys.readouterr().err.lower()


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
