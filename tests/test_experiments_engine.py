"""Monte Carlo engine: determinism, telemetry merge, fallback."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import engine as engine_module
from repro.experiments import table2_attack_awgn
from repro.experiments.engine import MonteCarloEngine
from repro.telemetry import SpanNode, Telemetry, get_telemetry
from repro.telemetry.metrics import Histogram, MetricRegistry
from repro.utils.rng import spawn_rngs, spawn_seeds


def _draw_trial(context, args, rng):
    """Trial: one Gaussian draw scaled by the context — pure RNG check."""
    (scale,) = args
    return float(rng.normal()) * scale * context["gain"]


def _counting_trial(context, args, rng):
    """Trial that records telemetry: a span, a counter, a histogram."""
    telemetry = get_telemetry()
    with telemetry.span("test.trial"):
        value = float(rng.normal())
        telemetry.count("test.trials")
        telemetry.observe("test.values", value)
    return value


class TestSpawnSeeds:
    def test_matches_spawn_rngs_streams(self):
        seeds = spawn_seeds(7, 5)
        generators = spawn_rngs(7, 5)
        for seed, generator in zip(seeds, generators):
            assert np.random.default_rng(seed).normal() == generator.normal()

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestEngineConfig:
    def test_invalid_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloEngine(workers=0)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError):
            MonteCarloEngine(chunk_size=0)

    def test_chunk_size_derivation(self):
        engine = MonteCarloEngine(workers=4)
        assert engine.resolve_chunk_size(160) == 10
        assert engine.resolve_chunk_size(1) == 1
        assert MonteCarloEngine(workers=4, chunk_size=3).resolve_chunk_size(160) == 3

    def test_negative_trial_count_rejected(self):
        with MonteCarloEngine().session({}) as session:
            with pytest.raises(ConfigurationError):
                session.run(_draw_trial, -1, static_args=(1.0,))


class TestDeterminism:
    def test_serial_matches_parallel_across_chunkings(self):
        context = {"gain": 2.0}
        with MonteCarloEngine().session(context) as session:
            serial = session.run(_draw_trial, 23, rng=5, static_args=(1.5,))
        for workers, chunk_size in ((2, 1), (2, 7), (4, None)):
            engine = MonteCarloEngine(workers=workers, chunk_size=chunk_size)
            with engine.session(context) as session:
                parallel = session.run(_draw_trial, 23, rng=5, static_args=(1.5,))
            assert parallel == serial, (workers, chunk_size)

    def test_results_arrive_in_trial_order(self):
        seeds = spawn_seeds(3, 11)
        expected = [float(np.random.default_rng(s).normal()) for s in seeds]
        engine = MonteCarloEngine(workers=2, chunk_size=4)
        with engine.session({"gain": 1.0}) as session:
            assert session.run(_draw_trial, 11, rng=3, static_args=(1.0,)) == expected

    def test_table2_rows_identical_serial_vs_parallel(self):
        serial = table2_attack_awgn.run(
            snrs_db=(11,), trials=4, include_authentic=False, rng=0
        )
        parallel = table2_attack_awgn.run(
            snrs_db=(11,), trials=4, include_authentic=False, rng=0,
            workers=2, chunk_size=1,
        )
        assert serial.rows == parallel.rows


class TestTelemetryMerge:
    def setup_method(self):
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()

    def teardown_method(self):
        telemetry = get_telemetry()
        telemetry.disable()
        telemetry.reset()

    def _run(self, workers, chunk_size=None):
        engine = MonteCarloEngine(workers=workers, chunk_size=chunk_size)
        with engine.session({}) as session:
            session.run(_counting_trial, 10, rng=1)
        return get_telemetry().snapshot()

    def test_parallel_counters_equal_serial(self):
        serial = self._run(workers=1)
        get_telemetry().reset()
        get_telemetry().enable()
        parallel = self._run(workers=2, chunk_size=3)
        assert (
            parallel["metrics"]["counters"]["test.trials"]
            == serial["metrics"]["counters"]["test.trials"]
            == 10
        )

    def test_parallel_span_counts_and_histograms_match_serial(self):
        serial = self._run(workers=1)
        get_telemetry().reset()
        get_telemetry().enable()
        parallel = self._run(workers=2, chunk_size=3)

        def span_count(snapshot):
            children = {
                c["name"]: c for c in snapshot["spans"]["children"]
            }
            return children["test.trial"]["count"]

        assert span_count(parallel) == span_count(serial) == 10
        serial_hist = serial["metrics"]["histograms"]["test.values"]
        parallel_hist = parallel["metrics"]["histograms"]["test.values"]
        for exact in ("count", "sum", "min", "max", "mean"):
            assert parallel_hist[exact] == pytest.approx(serial_hist[exact])

    def test_worker_spans_nest_under_current_parent_span(self):
        telemetry = get_telemetry()
        engine = MonteCarloEngine(workers=2, chunk_size=5)
        with telemetry.span("experiment.synthetic"):
            with engine.session({}) as session:
                session.run(_counting_trial, 10, rng=1)
        tree = telemetry.span_tree()
        experiment = {c["name"]: c for c in tree["children"]}["experiment.synthetic"]
        nested = {c["name"]: c for c in experiment["children"]}
        assert nested["test.trial"]["count"] == 10


class TestFallback:
    def test_pool_failure_degrades_to_serial(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no process spawning in this sandbox")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", broken_pool)
        engine = MonteCarloEngine(workers=4)
        with engine.session({"gain": 1.0}) as session:
            results = session.run(_draw_trial, 9, rng=2, static_args=(1.0,))
        assert engine.used_fallback
        with MonteCarloEngine().session({"gain": 1.0}) as session:
            assert results == session.run(_draw_trial, 9, rng=2, static_args=(1.0,))

    def test_pool_fallback_increments_telemetry_counter(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise OSError("no process spawning in this sandbox")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", broken_pool)
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()
        try:
            engine = MonteCarloEngine(workers=4)
            with engine.session({"gain": 1.0}) as session:
                session.run(_draw_trial, 4, rng=2, static_args=(1.0,))
                # A second run reuses the failed-pool decision and must
                # not double count the degradation event.
                session.run(_draw_trial, 4, rng=3, static_args=(1.0,))
            counters = telemetry.registry.counters
            assert counters["engine.pool_fallbacks"].value == 1
            assert counters["engine.pool_fallbacks{reason=OSError}"].value == 1
        finally:
            telemetry.reset()
            telemetry.disable()

    def test_unexpected_pool_errors_propagate(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise TypeError("a bug, not a restricted environment")

        monkeypatch.setattr(engine_module, "ProcessPoolExecutor", broken_pool)
        engine = MonteCarloEngine(workers=4)
        with engine.session({"gain": 1.0}) as session:
            with pytest.raises(TypeError):
                session.run(_draw_trial, 4, rng=2, static_args=(1.0,))
        assert not engine.used_fallback


class TestMergePrimitives:
    def test_span_node_merge_dict_accumulates(self):
        node = SpanNode("run")
        node.child("stage").call_count = 2
        node.child("stage").total_seconds = 1.0
        node.merge_dict(
            {
                "name": "run",
                "count": 1,
                "seconds": 0.5,
                "children": [
                    {"name": "stage", "count": 3, "seconds": 2.0, "children": []},
                    {"name": "new", "count": 1, "seconds": 0.1, "children": []},
                ],
            }
        )
        assert node.children["stage"].call_count == 5
        assert node.children["stage"].total_seconds == pytest.approx(3.0)
        assert node.children["new"].call_count == 1

    def test_histogram_merge_state_exact_aggregates(self):
        left, right = Histogram("h"), Histogram("h")
        for value in (1.0, 5.0):
            left.observe(value)
        for value in (-2.0, 3.0, 4.0):
            right.observe(value)
        left.merge_state(right.dump_state())
        assert left.count == 5
        assert left.total == pytest.approx(11.0)
        assert left.minimum == -2.0
        assert left.maximum == 5.0

    def test_registry_merge_state_counters_add_gauges_overwrite(self):
        left, right = MetricRegistry(), MetricRegistry()
        left.counter("c").increment(2)
        right.counter("c").increment(3)
        right.counter("only_right").increment(1)
        left.gauge("g").set(1.0)
        right.gauge("g").set(9.0)
        left.merge_state(right.dump_state())
        assert left.counters["c"].value == 5
        assert left.counters["only_right"].value == 1
        assert left.gauges["g"].value == 9.0

    def test_telemetry_dump_and_merge_roundtrip(self):
        worker = Telemetry()
        worker.enable()
        with worker.span("stage"):
            worker.count("events", 4)
        parent = Telemetry()
        parent.enable()
        parent.merge_state(worker.dump_state())
        assert parent.registry.counters["events"].value == 4
        assert parent.root.children["stage"].call_count == 1
