"""Tests for the Gray-coded QAM mappers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.wifi.qam import QamModulation, modulation_for_name


ALL_NAMES = ["bpsk", "qpsk", "16qam", "64qam"]


class TestConstellations:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_unit_average_power(self, name):
        points = modulation_for_name(name).constellation()
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)

    @pytest.mark.parametrize("name,size", [("bpsk", 2), ("qpsk", 4),
                                           ("16qam", 16), ("64qam", 64)])
    def test_constellation_size(self, name, size):
        assert modulation_for_name(name).constellation().size == size

    def test_64qam_levels(self):
        levels = modulation_for_name("64qam").axis_levels
        assert list(levels) == [-7, -5, -3, -1, 1, 3, 5, 7]

    def test_points_distinct(self):
        for name in ALL_NAMES:
            points = modulation_for_name(name).constellation()
            assert len(np.unique(np.round(points, 9))) == points.size

    def test_rejects_unknown_name(self):
        with pytest.raises(ConfigurationError):
            modulation_for_name("128qam")


class TestGrayMapping:
    @pytest.mark.parametrize("name", ALL_NAMES[1:])
    def test_nearest_neighbours_differ_in_one_bit(self, name):
        """Gray property: adjacent points differ in exactly one bit."""
        modulation = modulation_for_name(name)
        points = modulation.constellation()
        bps = modulation.bits_per_symbol
        min_distance = np.sort(
            np.abs(points[:, None] - points[None, :]).reshape(-1)
        )
        step = min_distance[points.size]  # smallest non-zero distance
        for i in range(points.size):
            for j in range(points.size):
                if i != j and abs(points[i] - points[j]) <= step * 1.01:
                    differing = bin(i ^ j).count("1")
                    assert differing == 1


class TestModulateDemodulate:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_roundtrip(self, name):
        modulation = modulation_for_name(name)
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 20 * modulation.bits_per_symbol).astype(np.uint8)
        assert np.array_equal(modulation.demodulate(modulation.modulate(bits)), bits)

    def test_rejects_ragged_bits(self):
        with pytest.raises(ConfigurationError):
            modulation_for_name("64qam").modulate(np.zeros(7, dtype=np.uint8))

    def test_demodulate_snaps_noisy_points(self):
        modulation = modulation_for_name("qpsk")
        bits = np.array([0, 0, 0, 1, 1, 1, 1, 0], dtype=np.uint8)
        points = modulation.modulate(bits)
        noisy = points + 0.05 * (1 + 1j)
        assert np.array_equal(modulation.demodulate(noisy), bits)

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(ALL_NAMES), st.integers(0, 2**16 - 1))
    def test_roundtrip_property(self, name, seed):
        modulation = modulation_for_name(name)
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 6 * modulation.bits_per_symbol).astype(np.uint8)
        recovered = modulation.demodulate(modulation.modulate(bits))
        assert np.array_equal(recovered, bits)


class TestQuantize:
    def test_quantize_returns_constellation_points(self):
        modulation = modulation_for_name("64qam")
        rng = np.random.default_rng(1)
        arbitrary = rng.standard_normal(50) + 1j * rng.standard_normal(50)
        quantized = modulation.quantize(arbitrary)
        table = set(np.round(modulation.constellation(), 9))
        assert all(np.round(q, 9) in table for q in quantized)

    def test_quantize_is_idempotent(self):
        modulation = modulation_for_name("16qam")
        points = modulation.constellation()
        assert np.allclose(modulation.quantize(points), points)
