"""Tests for the declarative sweep layer (``repro.experiments.sweep``).

Three contracts are pinned here:

* **Parity** — every migrated driver reproduces its committed oracle
  rows bit-identically, fixed and adaptive, serial and parallel; the
  table2 driver additionally matches the committed
  ``benchmarks/baselines/table2-trials20-seed1`` run directory.
* **Scenarios** — a scenario JSON file round-trips through
  ``load_scenario``/``apply_scenario`` into ``run_sweep`` and through
  the CLI, with the manifest recording the applied overrides, and
  malformed files failing with exit code 2 before any trial runs.
* **Capabilities** — the CLI builds runner kwargs from each entry's
  declared capabilities, rejects undeclared flags for a named
  experiment, and records exactly one run directory for ``run all``.
"""

import json
import math
import os

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.experiments import (
    fig12_defense,
    fig13_rssi,
    fig14_error_rates,
    table2_attack_awgn,
    table4_de2_snr,
    table5_de2_distance,
)
from repro.experiments.registry import (
    CAPABILITIES,
    experiment_ids,
    get_experiment,
)
from repro.experiments.sweep import apply_scenario, load_scenario, run_sweep

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ORACLE_DIR = os.path.join(REPO_ROOT, "benchmarks", "baselines", "sweep-oracles")
BASELINE_RUN = os.path.join(
    REPO_ROOT, "benchmarks", "baselines", "table2-trials20-seed1"
)

DRIVERS = {
    "table2": table2_attack_awgn,
    "table4": table4_de2_snr,
    "table5": table5_de2_distance,
    "fig12": fig12_defense,
    "fig13": fig13_rssi,
    "fig14": fig14_error_rates,
}


def load_oracle(experiment_id, mode):
    """One committed oracle document (config, columns, rows)."""
    path = os.path.join(ORACLE_DIR, f"{experiment_id}-{mode}.json")
    with open(path) as handle:
        return json.load(handle)


def result_cells(result, columns):
    """Result rows as lists in oracle column order, NaN as 'NaN'."""
    cells = []
    for row in result.rows:
        cells.append([
            "NaN" if isinstance(row[c], float) and math.isnan(row[c])
            else row[c]
            for c in columns
        ])
    return cells


def run_from_oracle(experiment_id, oracle, **extra):
    """Re-run the driver with the oracle's pinned config."""
    kwargs = {
        key: (tuple(value) if isinstance(value, list) else value)
        for key, value in oracle["config"].items()
    }
    return DRIVERS[experiment_id].run(**kwargs, **extra)


class TestOracleParity:
    """Every driver's rows are bit-identical to the committed oracles."""

    @pytest.mark.parametrize("experiment_id", sorted(DRIVERS))
    @pytest.mark.parametrize("mode", ["fixed", "adaptive"])
    def test_serial_rows_match_oracle(self, experiment_id, mode):
        oracle = load_oracle(experiment_id, mode)
        extra = {"adaptive": True} if mode == "adaptive" else {}
        result = run_from_oracle(experiment_id, oracle, **extra)
        assert result.columns == oracle["columns"]
        assert result_cells(result, oracle["columns"]) == oracle["rows"]

    @pytest.mark.parametrize("experiment_id", ["table2", "table4"])
    def test_parallel_rows_match_oracle(self, experiment_id):
        oracle = load_oracle(experiment_id, "fixed")
        result = run_from_oracle(experiment_id, oracle, workers=2)
        assert result_cells(result, oracle["columns"]) == oracle["rows"]

    def test_table2_matches_committed_run_directory(self):
        with open(os.path.join(BASELINE_RUN, "rows", "table2.json")) as handle:
            baseline = json.load(handle)
        result = table2_attack_awgn.run(trials=20, rng=1)
        assert result.columns == baseline["columns"]
        assert result_cells(result, baseline["columns"]) == baseline["rows"]

    def test_batch_toggle_is_bit_identical(self):
        oracle = load_oracle("table2", "fixed")
        scalar = run_from_oracle("table2", oracle, batch=False)
        assert result_cells(scalar, oracle["columns"]) == oracle["rows"]


SCENARIO = {
    "experiment": "table2",
    "description": "rayleigh grid",
    "overrides": {
        "snrs_db": [9, 15],
        "trials": 4,
        "include_authentic": False,
        "screen_defense": False,
    },
    "channel": {"profile": "rayleigh", "max_cfo_hz": 0.0,
                "random_phase": False},
}


@pytest.fixture()
def scenario_path(tmp_path):
    path = tmp_path / "scenario.json"
    path.write_text(json.dumps(SCENARIO))
    return str(path)


class TestScenarioRoundTrip:
    def test_scenario_to_spec_to_rows(self, scenario_path):
        scenario = load_scenario(scenario_path)
        overrides = apply_scenario(table2_attack_awgn.SPEC, scenario)
        assert overrides["snrs_db"] == [9, 15]
        assert overrides["channel"]["profile"] == "rayleigh"
        result = run_sweep(table2_attack_awgn.SPEC, overrides=overrides, rng=3)
        assert [row["snr_db"] for row in result.rows] == [9, 15]
        assert result.columns == ["snr_db", "success_rate",
                                  "paper_success_rate"]

    def test_scenario_changes_the_channel(self, scenario_path):
        # A lower grid than the fixture's: at 9+ dB both channels
        # saturate at success 1.0 and the rows cannot differ.
        scenario = load_scenario(scenario_path)
        scenario["overrides"].update(snrs_db=[5, 7], trials=8)
        overrides = apply_scenario(table2_attack_awgn.SPEC, scenario)
        faded = run_sweep(table2_attack_awgn.SPEC, overrides=overrides, rng=3)
        awgn = run_sweep(
            table2_attack_awgn.SPEC,
            overrides={k: v for k, v in overrides.items() if k != "channel"},
            rng=3,
        )
        assert faded.rows != awgn.rows

    def test_cli_scenario_records_overrides_in_manifest(
        self, scenario_path, tmp_path, capsys
    ):
        save_dir = str(tmp_path / "out")
        assert main(["run", "--scenario", scenario_path, "--seed", "3",
                     "--save", save_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["experiment_id"] == "table2"
        with open(os.path.join(save_dir, "table2.manifest.json")) as handle:
            manifest = json.load(handle)
        recorded = manifest["config"]["scenario"]
        assert recorded["snrs_db"] == [9, 15]
        assert recorded["channel"]["profile"] == "rayleigh"

    def test_cli_scenario_matches_direct_run_sweep(
        self, scenario_path, capsys
    ):
        assert main(["run", "--scenario", scenario_path, "--seed", "3",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        scenario = load_scenario(scenario_path)
        overrides = apply_scenario(table2_attack_awgn.SPEC, scenario)
        direct = run_sweep(table2_attack_awgn.SPEC, overrides=overrides, rng=3)
        assert payload["rows"] == direct.rows

    def test_scenario_checkpoint_resume_and_adaptive(
        self, scenario_path, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "ckpt")
        base = ["run", "--scenario", scenario_path, "--seed", "3",
                "--adaptive", "--checkpoint-dir", ckpt, "--json"]
        assert main(base) == 0
        first = json.loads(capsys.readouterr().out.strip())
        assert main(base + ["--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out.strip())
        assert resumed["rows"] == first["rows"]
        assert all("trials_used" in row for row in first["rows"])

    def test_cli_trials_overrides_the_scenario_axis(
        self, scenario_path, capsys
    ):
        assert main(["run", "--scenario", scenario_path, "--seed", "3",
                     "--trials", "6", "--adaptive", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert all(row["trials_used"] >= 6 for row in payload["rows"])


class TestScenarioValidation:
    def cli_error(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().err

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        code, err = self.cli_error(capsys, "run", "--scenario", str(path))
        assert code == 2 and "malformed scenario JSON" in err

    def test_unknown_top_level_key_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"experiment": "table2", "bogus": 1}))
        code, err = self.cli_error(capsys, "run", "--scenario", str(path))
        assert code == 2 and "unknown scenario keys" in err

    def test_missing_experiment_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"overrides": {"trials": 2}}))
        code, err = self.cli_error(capsys, "run", "--scenario", str(path))
        assert code == 2 and "experiment" in err

    def test_unknown_experiment_in_scenario_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"experiment": "table42"}))
        code, err = self.cli_error(capsys, "run", "--scenario", str(path))
        assert code == 2 and "unknown experiment" in err

    def test_experiment_mismatch_exits_2(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"experiment": "table2"}))
        code, err = self.cli_error(
            capsys, "run", "table4", "--scenario", str(path)
        )
        assert code == 2 and "table4" in err

    def test_unsupported_axis_override_is_rejected(self):
        with pytest.raises(ConfigurationError, match="not supported"):
            apply_scenario(
                table2_attack_awgn.SPEC,
                {"experiment": "table2", "overrides": {"bogus_axis": 1}},
            )

    def test_unsupported_channel_profile_is_rejected(self):
        with pytest.raises(ConfigurationError):
            apply_scenario(
                table2_attack_awgn.SPEC,
                {"experiment": "table2",
                 "channel": {"profile": "underwater"}},
            )

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code, err = self.cli_error(
            capsys, "run", "--scenario", str(tmp_path / "nope.json")
        )
        assert code == 2 and "cannot read scenario file" in err

    def test_run_without_experiment_or_scenario_exits_2(self, capsys):
        code, err = self.cli_error(capsys, "run")
        assert code == 2 and "--scenario" in err


class TestCapabilityMetadata:
    def test_every_entry_declares_valid_capabilities(self):
        for experiment_id in experiment_ids():
            entry = get_experiment(experiment_id)
            assert entry.capabilities <= CAPABILITIES
            if "scenario" in entry.capabilities:
                assert entry.spec is not None
                assert entry.spec.experiment_id == experiment_id

    def test_sweep_drivers_expose_their_specs(self):
        for experiment_id, module in DRIVERS.items():
            entry = get_experiment(experiment_id)
            assert entry.spec is module.SPEC

    def test_undeclared_flag_exits_2_naming_capabilities(self, capsys):
        assert main(["run", "fig5", "--adaptive"]) == 2
        err = capsys.readouterr().err
        assert "--adaptive" in err and "declared capabilities" in err

    def test_undeclared_scenario_flag_exits_2(self, tmp_path, capsys):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({"experiment": "fig5"}))
        assert main(["run", "--scenario", str(path)]) == 2
        err = capsys.readouterr().err
        assert "--scenario" in err

    def test_trials_flag_maps_to_declared_parameter(self, capsys):
        assert main(["run", "table3", "--trials", "2000", "--seed", "1",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["experiment_id"] == "table3"

    def test_unknown_experiment_still_raises(self):
        with pytest.raises(ConfigurationError):
            main(["run", "table42"])


class TestRunAllRecordsOneRunDirectory:
    def test_run_all_uses_a_single_run_directory(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.cli as cli_module

        monkeypatch.setattr(
            cli_module, "experiment_ids", lambda: ["table1", "table3"]
        )
        runs_dir = str(tmp_path / "runs")
        assert main(["run", "all", "--seed", "1", "--telemetry",
                     "--runs-dir", runs_dir]) == 0
        capsys.readouterr()
        from repro.telemetry import RunRegistry

        runs = RunRegistry(runs_dir).list()
        assert len(runs) == 1
        manifest = runs[0].read_manifest()
        assert manifest["experiments"] == ["table1", "table3"]
        assert manifest["status"] == "ok"
