"""Smoke+shape tests for every experiment runner (tiny trial counts)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    fig5_waveform_comparison,
    fig6_constellation,
    fig7_hamming,
    fig8_cp_repetition,
    fig9_possible_strategies,
    fig10_c42,
    fig12_defense,
    fig14_error_rates,
    table1_frequency_points,
    table2_attack_awgn,
    table3_theoretical_cumulants,
    table4_de2_snr,
    table5_de2_distance,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import experiment_ids, get_experiment


class TestResultType:
    def test_add_row_validates_columns(self):
        result = ExperimentResult("x", "t", columns=["a"])
        result.add_row(a=1)
        with pytest.raises(ConfigurationError):
            result.add_row(b=2)

    def test_format_table_renders(self):
        result = ExperimentResult("x", "title", columns=["a", "b"])
        result.add_row(a=1, b=2.5)
        result.notes.append("remark")
        text = result.format_table()
        assert "title" in text and "2.5000" in text and "remark" in text

    def test_registry_covers_all(self):
        assert len(experiment_ids()) == 15
        for experiment_id in experiment_ids():
            assert get_experiment(experiment_id).run is not None

    def test_registry_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            get_experiment("table9")


class TestDetectorMatrix:
    def test_matched_filter_variant_wins(self):
        from repro.experiments import detector_matrix

        result = detector_matrix.run(waveforms_per_cell=4, rng=3)
        margins = dict(
            zip((v.name for v in detector_matrix.STANDARD_VARIANTS),
                result.series["margins"])
        )
        assert margins["mf/|C40|/nc"] > 1.0


class TestTable1:
    def test_selection_matches_paper(self):
        result = table1_frequency_points.run(rng=0)
        assert tuple(result.series["selected_bins"].astype(int)) == (
            0, 1, 2, 3, 61, 62, 63,
        )


class TestTable2:
    def test_success_monotone_and_saturates(self):
        result = table2_attack_awgn.run(
            snrs_db=(7, 17), trials=15, include_authentic=False, rng=0
        )
        low, high = (row["success_rate"] for row in result.rows)
        assert high >= low
        assert high == 1.0
        assert low < 1.0


class TestTable3:
    def test_analytic_matches_paper_exactly(self):
        result = table3_theoretical_cumulants.run(sample_count=4000, rng=0)
        for row in result.rows:
            assert row["C40"] == pytest.approx(row["paper_C40"], abs=1e-3)
            assert row["C42"] == pytest.approx(row["paper_C42"], abs=1e-3)


class TestTable4:
    def test_emulated_statistic_dominates(self):
        result = table4_de2_snr.run(snrs_db=(17,), waveforms_per_point=5, rng=0)
        row = result.rows[0]
        assert row["emulated_de2"] > 10 * row["zigbee_de2"]


class TestTable5:
    def test_gap_exists_at_every_distance(self):
        result = table5_de2_distance.run(
            distances_m=(1, 4), waveforms_per_point=5, rng=0
        )
        for row in result.rows:
            assert row["emulated_de2"] > 3 * row["zigbee_de2"]


class TestFigures:
    def test_fig5_body_matches(self):
        result = fig5_waveform_comparison.run(rng=0)
        for row in result.rows:
            assert row["nmse_body"] < 0.2
            assert row["correlation_body"] > 0.9

    def test_fig6_real_scenario_rotates(self):
        result = fig6_constellation.run(rng=0)
        awgn_row, real_row = result.rows
        assert abs(real_row["phase_offset_deg"]) > abs(awgn_row["phase_offset_deg"])

    def test_fig7_distributions_disjoint(self):
        result = fig7_hamming.run(num_packets=3, rng=0)
        original = result.series["original"]
        emulated = result.series["emulated"]
        assert original[0] > 0.99
        assert emulated[0] < 0.01
        assert emulated[2:10].sum() > 0.95

    def test_fig8_pristine_detectable_received_not(self):
        result = fig8_cp_repetition.run(rng=0)
        rows = {row["waveform"]: row for row in result.rows}
        assert rows["emulated"]["cp_correlation_pristine"] > 0.95
        gap = abs(
            rows["emulated"]["cp_correlation_received"]
            - rows["original"]["cp_correlation_received"]
        )
        assert gap < 0.25

    def test_fig9_statistics_close_across_classes(self):
        result = fig9_possible_strategies.run(rng=0)
        rows = {row["metric"]: row for row in result.rows}
        deviation = rows["frequency_deviation_khz"]
        assert deviation["emulated"] == pytest.approx(
            deviation["original"], rel=0.3
        )
        assert rows["decoded_symbol_agreement"]["original"] == 1.0

    def test_fig10_trends(self):
        result = fig10_c42.run(snrs_db=(7, 17), waveforms_per_point=4, rng=0)
        zigbee = result.series["zigbee"]
        emulated = result.series["emulated"]
        # ZigBee approaches -1 with SNR; emulated stays farther away.
        assert abs(zigbee[-1] + 1) < abs(zigbee[0] + 1)
        assert abs(emulated[-1] + 1) > abs(zigbee[-1] + 1)

    def test_fig11_statistic_switch(self):
        result = fig10_c42.run(
            snrs_db=(17,), waveforms_per_point=3, statistic="c40", rng=0
        )
        assert result.experiment_id == "fig11"
        assert result.rows[0]["zigbee_c40"] > 0.9

    def test_fig12_perfect_classification(self):
        result = fig12_defense.run(
            snrs_db=(17,), train_per_class=5, test_per_class=5, rng=0
        )
        for row in result.rows:
            assert row["false_alarm_rate"] == 0.0
            assert row["miss_rate"] == 0.0

    def test_fig14_usrp_degrades_commodity_survives(self):
        result = fig14_error_rates.run(distances_m=(1, 8), trials=4, rng=0)
        def cell(distance, receiver, waveform):
            for row in result.rows:
                if (row["distance_m"], row["receiver"], row["waveform"]) == (
                    distance, receiver, waveform,
                ):
                    return row
            raise AssertionError("missing cell")

        assert cell(1, "usrp", "original")["packet_error_rate"] == 0.0
        assert (
            cell(8, "usrp", "emulated")["packet_error_rate"]
            >= cell(1, "usrp", "emulated")["packet_error_rate"]
        )
        assert cell(8, "cc26x2", "original")["packet_error_rate"] <= 0.25
