"""Integration tests of the paper's complete narrative.

Each test tells one chapter of the story end-to-end:
attack succeeds -> rejected defenses fail -> cumulant defense catches it.
"""

import numpy as np
import pytest

from repro.attack.emulator import EmulationConfig, WaveformEmulationAttack
from repro.channel.awgn import AwgnChannel
from repro.channel.environment import RealEnvironment
from repro.defense.detector import CumulantDetector, Hypothesis, calibrate_threshold
from repro.experiments.defense_common import defense_receiver, extract_chips
from repro.link.stack import EmulationAttackLink, ZigBeeDirectLink
from repro.zigbee.receiver import ReceiverConfig, ZigBeeReceiver
from repro.zigbee.transmitter import ZigBeeTransmitter


class TestAttackNarrative:
    def test_attacker_controls_device_with_intercepted_command(self):
        """Channel listening -> emulation -> the receiver obeys."""
        # t1: a gateway sends a command; the attacker records the waveform.
        gateway = ZigBeeTransmitter()
        command = gateway.transmit_payload(b"UNLOCK-DOOR", sequence_number=42)

        # t2: the attacker replays its WiFi emulation.
        attacker = WaveformEmulationAttack()
        emulated = attacker.emulate(command.waveform)
        on_air = attacker.transmit_waveform(emulated)

        victim = ZigBeeReceiver()
        packet = victim.receive(on_air)
        assert packet.fcs_ok
        assert packet.mac_frame.payload == b"UNLOCK-DOOR"
        assert packet.mac_frame.sequence_number == 42

    def test_attack_survives_moderate_noise_but_not_deep_noise(self):
        link = EmulationAttackLink(
            receiver=ZigBeeReceiver(
                ReceiverConfig(demodulation="quadrature", decimation="naive")
            )
        )
        high = [
            link.send(b"cmd", channel=AwgnChannel(17, rng=i)).delivered
            for i in range(8)
        ]
        low = [
            link.send(b"cmd", channel=AwgnChannel(3, rng=100 + i)).delivered
            for i in range(8)
        ]
        assert np.mean(high) > np.mean(low)
        assert np.mean(high) == 1.0

    def test_attack_defeats_longer_commands_too(self):
        link = EmulationAttackLink()
        outcome = link.send(bytes(range(90)))
        assert outcome.delivered


class TestDefenseNarrative:
    def _statistic(self, link, payload, channel, detector):
        outcome = link.send(payload, channel=channel)
        assert outcome.packet is not None and outcome.packet.decoded
        chips = outcome.packet.diagnostics.psdu_quadrature_soft_chips
        return detector.statistic(chips).distance_squared

    def test_calibrate_then_classify(self):
        """The paper's full protocol: train on 50/50, test on fresh data."""
        detector = CumulantDetector()
        receiver = defense_receiver()
        direct = ZigBeeDirectLink(receiver=receiver)
        attack = EmulationAttackLink(receiver=receiver)

        train_zigbee = [
            self._statistic(direct, b"train", AwgnChannel(12, rng=i), detector)
            for i in range(6)
        ]
        train_emulated = [
            self._statistic(attack, b"train", AwgnChannel(12, rng=50 + i), detector)
            for i in range(6)
        ]
        threshold = calibrate_threshold(train_zigbee, train_emulated)

        tuned = CumulantDetector(threshold=threshold)
        fresh_zigbee = self._statistic(
            direct, b"test", AwgnChannel(12, rng=99), tuned
        )
        fresh_emulated = self._statistic(
            attack, b"test", AwgnChannel(12, rng=98), tuned
        )
        assert fresh_zigbee < threshold <= fresh_emulated

    def test_defense_works_in_real_environment(self):
        """Distance + fading + offsets: |C40| + noise correction separates."""
        from repro.experiments.defense_common import chip_noise_variance_for

        detector = CumulantDetector(use_abs_c40=True)
        receiver = defense_receiver()
        direct = ZigBeeDirectLink(receiver=receiver)
        attack = EmulationAttackLink(receiver=receiver)
        env = RealEnvironment(rng=5)

        def statistic_of(outcome):
            packet = outcome.packet
            chips = packet.diagnostics.psdu_soft_chips
            noise = chip_noise_variance_for(
                packet, "matched_filter", receiver.config.samples_per_chip
            )
            return detector.statistic(
                chips, chip_noise_variance=noise
            ).distance_squared

        zigbee_values, emulated_values = [], []
        for i in range(5):
            z = direct.send(b"real", channel=env.channel_at(3.0))
            e = attack.send(b"real", channel=env.channel_at(3.0))
            if z.packet and z.packet.decoded:
                zigbee_values.append(statistic_of(z))
            if e.packet and e.packet.decoded:
                emulated_values.append(statistic_of(e))
        assert zigbee_values and emulated_values
        assert max(zigbee_values) < min(emulated_values)

    def test_defense_against_rf_mode_attack(self):
        """The standards-compliant (pilots + offset) attack is also caught."""
        transmitter = ZigBeeTransmitter()
        sent = transmitter.transmit_payload(b"rf-mode")
        attack = WaveformEmulationAttack(config=EmulationConfig(mode="rf"), rng=2)
        emulated = attack.emulate(sent.waveform)

        from repro.utils.signal_ops import Waveform, frequency_shift

        received = Waveform(
            frequency_shift(emulated.waveform.samples, 5e6, 20e6), 20e6
        )
        receiver = defense_receiver()
        packet = receiver.receive(received)
        assert packet.decoded  # the attack works...

        detector = CumulantDetector(use_abs_c40=True)
        verdict = detector.statistic(
            packet.diagnostics.psdu_quadrature_soft_chips
        )
        assert verdict.hypothesis is Hypothesis.WIFI_ATTACKER or (
            verdict.distance_squared > 0.02
        )  # ...but leaves footprints well above the authentic range.
