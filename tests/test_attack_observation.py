"""Tests for noisy channel listening and soft DSSS despreading."""

import numpy as np
import pytest

from repro.attack.observation import (
    ChannelListener,
    observation_gain_db,
)
from repro.channel.awgn import AwgnChannel
from repro.errors import ConfigurationError, SynchronizationError
from repro.utils.signal_ops import Waveform, normalize_power
from repro.zigbee.chips import chip_table
from repro.zigbee.spreading import SoftDsssDespreader, spread_symbols
from repro.zigbee.transmitter import ZigBeeTransmitter


def _noisy_captures(sent, count, snr_db, lead=150, seed0=0):
    pad = np.zeros(lead, dtype=complex)
    clean = Waveform(
        np.concatenate([pad, sent.waveform.samples, pad]), 4e6
    )
    return [AwgnChannel(snr_db, rng=seed0 + i).apply(clean) for i in range(count)]


class TestChannelListener:
    @pytest.fixture(scope="class")
    def sent(self):
        return ZigBeeTransmitter().transmit_payload(b"observe-me")

    def test_averaging_reduces_noise(self, sent):
        listener = ChannelListener()
        reference = normalize_power(sent.waveform.samples)

        def residual(count):
            captures = _noisy_captures(sent, count, snr_db=3.0)
            result = listener.average(captures, length=len(sent.waveform))
            return float(
                np.mean(np.abs(result.waveform.samples - reference) ** 2)
            )

        assert residual(16) < residual(2) / 3

    def test_alignment_under_random_offsets(self, sent):
        """Captures with different timing and phase still average coherently."""
        listener = ChannelListener()
        reference = normalize_power(sent.waveform.samples)
        rng = np.random.default_rng(5)
        captures = []
        for i in range(8):
            lead = int(rng.integers(50, 400))
            pad = np.zeros(lead, dtype=complex)
            tail = np.zeros(500 - lead, dtype=complex)
            samples = np.concatenate([pad, sent.waveform.samples, tail])
            samples = samples * np.exp(1j * rng.uniform(-np.pi, np.pi))
            captures.append(
                AwgnChannel(8.0, rng=100 + i).apply(Waveform(samples, 4e6))
            )
        result = listener.average(captures, length=len(sent.waveform))
        assert result.used == 8
        error = np.mean(np.abs(result.waveform.samples - reference) ** 2)
        assert error < 0.05

    def test_discards_unsyncable_captures(self, sent):
        listener = ChannelListener(min_captures=2)
        rng = np.random.default_rng(0)
        noise_only = Waveform(
            0.1 * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000)),
            4e6,
        )
        captures = _noisy_captures(sent, 3, snr_db=10.0) + [noise_only]
        result = listener.average(captures)
        assert result.used == 3
        assert result.discarded == 1

    def test_raises_when_too_few_survive(self, sent):
        listener = ChannelListener(min_captures=2)
        rng = np.random.default_rng(1)
        noise = [
            Waveform(0.1 * (rng.standard_normal(4000)
                            + 1j * rng.standard_normal(4000)), 4e6)
            for _ in range(3)
        ]
        with pytest.raises(SynchronizationError):
            listener.average(noise)

    def test_rejects_mixed_rates(self, sent):
        listener = ChannelListener()
        captures = _noisy_captures(sent, 1, snr_db=10.0)
        captures.append(Waveform(captures[0].samples, 20e6))
        with pytest.raises(ConfigurationError):
            listener.average(captures)

    def test_gain_formula(self):
        assert observation_gain_db(10) == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            observation_gain_db(0)

    def test_attack_succeeds_from_low_snr_observations(self, sent):
        """End-to-end: averaging rescues the attack at 0 dB listening SNR."""
        from repro.attack import WaveformEmulationAttack
        from repro.zigbee.receiver import ZigBeeReceiver

        listener = ChannelListener()
        captures = _noisy_captures(sent, 16, snr_db=0.0, seed0=40)
        template = listener.average(captures, length=len(sent.waveform))
        attack = WaveformEmulationAttack()
        emulation = attack.emulate(template.waveform)
        packet = ZigBeeReceiver().receive(attack.transmit_waveform(emulation))
        assert packet.fcs_ok


class TestSoftDespreading:
    def test_clean_roundtrip(self):
        despreader = SoftDsssDespreader()
        symbols = list(range(16))
        soft = 2.0 * spread_symbols(symbols).astype(np.float64) - 1.0
        decisions = despreader.despread(soft)
        assert [d.symbol for d in decisions] == symbols

    def test_outperforms_hard_decisions_at_low_snr(self):
        """Soft correlation survives noise that breaks hard slicing."""
        from repro.zigbee.spreading import DsssDespreader

        rng = np.random.default_rng(7)
        hard_errors = soft_errors = 0
        trials = 200
        for trial in range(trials):
            symbol = int(rng.integers(0, 16))
            clean = 2.0 * chip_table()[symbol].astype(np.float64) - 1.0
            noisy = clean + 1.6 * rng.standard_normal(32)
            soft_decision = SoftDsssDespreader(acceptance=0.0).despread_sequence(noisy)
            hard_decision = DsssDespreader(correlation_threshold=32).despread_sequence(
                (noisy > 0).astype(np.uint8)
            )
            soft_errors += soft_decision.symbol != symbol
            hard_errors += hard_decision.symbol != symbol
        assert soft_errors <= hard_errors

    def test_acceptance_threshold_drops_garbage(self):
        despreader = SoftDsssDespreader(acceptance=0.6)
        rng = np.random.default_rng(9)
        garbage = rng.standard_normal(32)
        assert despreader.despread_sequence(garbage).symbol is None

    def test_rejects_bad_acceptance(self):
        with pytest.raises(ConfigurationError):
            SoftDsssDespreader(acceptance=1.5)

    def test_rejects_partial_block(self):
        with pytest.raises(ConfigurationError):
            SoftDsssDespreader().despread_sequence(np.zeros(31))
