"""Checkpointing: atomic JSON, the point store, and driver resume."""

import json
import math

import pytest

from repro.errors import ConfigurationError, TrialExecutionError
from repro.experiments import engine as engine_module
from repro.experiments import table2_attack_awgn
from repro.experiments.checkpoint import CheckpointStore, open_checkpoint_store
from repro.experiments.engine import FAULT_EVERY_ENV
from repro.telemetry import get_telemetry
from repro.utils.io import atomic_write_json, read_json


class TestAtomicJson:
    def test_floats_round_trip_exactly(self, tmp_path):
        path = tmp_path / "doc.json"
        payload = {"a": 0.1, "b": 1.0 / 3.0, "c": 1e-300, "nan": float("nan")}
        atomic_write_json(path, payload)
        loaded = read_json(path)
        assert loaded["a"] == payload["a"]
        assert loaded["b"] == payload["b"]
        assert loaded["c"] == payload["c"]
        assert math.isnan(loaded["nan"])

    def test_overwrite_leaves_no_staging_file(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert read_json(path) == {"v": 2}
        assert list(tmp_path.iterdir()) == [path]

    def test_failed_write_preserves_existing_document(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_json(path, {"v": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"v": {1, 2}})  # sets are not JSON
        assert read_json(path) == {"v": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_read_missing_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_json(tmp_path / "absent.json")


class TestCheckpointStore:
    def test_save_completed_get_cycle(self, tmp_path):
        fingerprint = {"seed": 1, "trials": 10}
        store = CheckpointStore(tmp_path, "table2", fingerprint=fingerprint)
        assert not store.completed("snr7")
        store.save("snr7", {"snr_db": 7, "rate": 0.5})
        assert store.completed("snr7")
        # A fresh (non-resume) store never serves from disk.
        assert store.get("snr7") is None

        resumed = CheckpointStore(
            tmp_path, "table2", fingerprint=fingerprint, resume=True
        )
        assert resumed.get("snr7") == {"snr_db": 7, "rate": 0.5}
        assert resumed.get("snr9") is None
        assert resumed.resumed_keys == ["snr7"]

    def test_fingerprint_mismatch_rejected_on_resume(self, tmp_path):
        CheckpointStore(tmp_path, "table2", fingerprint={"seed": 1})
        with pytest.raises(ConfigurationError):
            CheckpointStore(
                tmp_path, "table2", fingerprint={"seed": 2}, resume=True
            )

    def test_fresh_open_invalidates_stale_points(self, tmp_path):
        first = CheckpointStore(tmp_path, "table2", fingerprint={"seed": 1})
        first.save("snr7", {"rate": 0.5})
        # Re-opening without resume (e.g. different parameters) must not
        # let a later resume serve the stale point.
        second = CheckpointStore(tmp_path, "table2", fingerprint={"seed": 2})
        assert not second.completed("snr7")

    def test_keys_with_awkward_characters(self, tmp_path):
        store = CheckpointStore(tmp_path, "fig14", fingerprint={}, resume=False)
        key = "d1.5/usrp original"
        store.save(key, [1, 2])
        assert store.completed(key)
        resumed = CheckpointStore(tmp_path, "fig14", fingerprint={}, resume=True)
        assert resumed.get(key) == [1, 2]

    def test_resume_hits_count_on_telemetry(self, tmp_path):
        store = CheckpointStore(tmp_path, "table2", fingerprint={})
        store.save("snr7", {"rate": 1.0})
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()
        try:
            resumed = CheckpointStore(
                tmp_path, "table2", fingerprint={}, resume=True
            )
            resumed.get("snr7")
            resumed.get("snr9")  # miss: must not count
            counters = telemetry.registry.counters
            assert counters["engine.points_resumed"].value == 1
        finally:
            telemetry.disable()
            telemetry.reset()

    def test_open_helper_disabled_and_resume_guard(self, tmp_path):
        assert open_checkpoint_store(None, "table2") is None
        with pytest.raises(ConfigurationError):
            open_checkpoint_store(None, "table2", resume=True)
        store = open_checkpoint_store(tmp_path, "table2", fingerprint={})
        assert isinstance(store, CheckpointStore)

    def test_slug_collision_on_save_raises(self, tmp_path):
        # Regression: "snr=1" and "snr:1" both slug to point_snr_1.json;
        # the second save used to silently overwrite the first point.
        store = CheckpointStore(tmp_path, "table2", fingerprint={})
        store.save("snr=1", {"rate": 0.25})
        with pytest.raises(ConfigurationError, match="collision"):
            store.save("snr:1", {"rate": 0.75})
        # The original point must be untouched.
        resumed = CheckpointStore(tmp_path, "table2", fingerprint={},
                                  resume=True)
        assert resumed.get("snr=1") == {"rate": 0.25}

    def test_slug_collision_on_get_and_completed_raises(self, tmp_path):
        store = CheckpointStore(tmp_path, "table2", fingerprint={})
        store.save("snr=1", {"rate": 0.25})
        resumed = CheckpointStore(tmp_path, "table2", fingerprint={},
                                  resume=True)
        with pytest.raises(ConfigurationError, match="collision"):
            resumed.completed("snr:1")
        with pytest.raises(ConfigurationError, match="collision"):
            resumed.get("snr:1")
        assert resumed.resumed_keys == []

    def test_same_key_resave_is_allowed(self, tmp_path):
        store = CheckpointStore(tmp_path, "table2", fingerprint={})
        store.save("snr7", {"rate": 0.5})
        store.save("snr7", {"rate": 0.6})
        resumed = CheckpointStore(tmp_path, "table2", fingerprint={},
                                  resume=True)
        assert resumed.get("snr7") == {"rate": 0.6}

    def test_meta_records_format_version(self, tmp_path):
        CheckpointStore(tmp_path, "table2", fingerprint={"seed": 1})
        meta = json.loads((tmp_path / "table2" / "meta.json").read_text())
        assert meta["format_version"] == 1
        assert meta["experiment_id"] == "table2"


class TestDriverResume:
    PARAMS = {"snrs_db": (15, 17), "trials": 3, "include_authentic": False}

    def test_table2_checkpoint_then_resume_bit_identical(self, tmp_path):
        fresh = table2_attack_awgn.run(rng=1, **self.PARAMS)
        first = table2_attack_awgn.run(
            rng=1, checkpoint_dir=str(tmp_path), **self.PARAMS
        )
        assert first.rows == fresh.rows
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()
        try:
            resumed = table2_attack_awgn.run(
                rng=1, checkpoint_dir=str(tmp_path), resume=True, **self.PARAMS
            )
            counters = telemetry.registry.counters
            assert counters["engine.points_resumed"].value == 2
        finally:
            telemetry.disable()
            telemetry.reset()
        assert resumed.rows == fresh.rows

    def test_resume_with_different_seed_rejected(self, tmp_path):
        table2_attack_awgn.run(rng=1, checkpoint_dir=str(tmp_path), **self.PARAMS)
        with pytest.raises(ConfigurationError):
            table2_attack_awgn.run(
                rng=2, checkpoint_dir=str(tmp_path), resume=True, **self.PARAMS
            )

    def test_killed_sweep_resumes_to_the_fresh_rows(self, tmp_path, monkeypatch):
        # Simulate a run killed between sweep points: at seed 3 the
        # fault drill with N=5 leaves the first SNR point checkpointed
        # and aborts (on_error="raise") inside the second.
        monkeypatch.setenv(FAULT_EVERY_ENV, "5")
        engine_module._FAULTED_SEEDS.clear()
        with pytest.raises(TrialExecutionError):
            table2_attack_awgn.run(
                rng=3, checkpoint_dir=str(tmp_path), **self.PARAMS
            )
        assert (tmp_path / "table2" / "point_snr15.json").exists()
        assert not (tmp_path / "table2" / "point_snr17.json").exists()

        monkeypatch.delenv(FAULT_EVERY_ENV)
        engine_module._FAULTED_SEEDS.clear()
        fresh = table2_attack_awgn.run(rng=3, **self.PARAMS)
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()
        try:
            resumed = table2_attack_awgn.run(
                rng=3, checkpoint_dir=str(tmp_path), resume=True, **self.PARAMS
            )
            counters = telemetry.registry.counters
            assert counters["engine.points_resumed"].value == 1
        finally:
            telemetry.disable()
            telemetry.reset()
        assert resumed.rows == fresh.rows

    def test_faulted_retry_run_matches_unfaulted_rows(self, tmp_path, monkeypatch):
        fresh = table2_attack_awgn.run(rng=3, **self.PARAMS)
        monkeypatch.setenv(FAULT_EVERY_ENV, "5")
        engine_module._FAULTED_SEEDS.clear()
        faulted = table2_attack_awgn.run(rng=3, on_error="retry", **self.PARAMS)
        assert faulted.rows == fresh.rows
