"""Tests for the shared experiment infrastructure."""

import numpy as np
import pytest

from repro.defense.detector import CumulantDetector
from repro.experiments.common import (
    LEAD_IN_SAMPLES,
    build_observed_waveform,
    default_payload,
    packet_delivered,
    prepare_authentic,
    prepare_emulated,
    transmit_once,
)
from repro.experiments.defense_common import (
    chip_noise_variance_for,
    collect_statistics,
    defense_receiver,
    extract_chips,
    matched_filter_chip_noise_variance,
    mean_distance_squared,
)


class TestPreparedLinks:
    def test_lead_in_present(self, authentic_link):
        assert np.allclose(
            authentic_link.on_air.samples[:LEAD_IN_SAMPLES], 0.0
        )

    def test_authentic_has_no_emulation(self, authentic_link):
        assert authentic_link.emulation is None

    def test_emulated_carries_attack_internals(self, emulated_link):
        assert emulated_link.emulation is not None
        assert emulated_link.emulation.scale > 0

    def test_default_payload_stable(self):
        assert default_payload() == b"00042"

    def test_build_observed_uses_payload(self):
        sent = build_observed_waveform(b"custom")
        assert b"custom" in sent.ppdu


class TestTransmitOnce:
    def test_noiseless_delivery(self, authentic_link):
        packet = transmit_once(authentic_link, defense_receiver(), None)
        assert packet is not None
        assert packet_delivered(authentic_link, packet)

    def test_deep_noise_returns_none_or_undelivered(self, authentic_link):
        packet = transmit_once(authentic_link, defense_receiver(), -30.0, rng=0)
        assert packet is None or not packet_delivered(authentic_link, packet)

    def test_delivery_requires_exact_psdu(self, authentic_link, emulated_link):
        # A packet decoded from a different frame must not count.
        packet = transmit_once(emulated_link, defense_receiver(), None)
        assert packet_delivered(emulated_link, packet)
        assert packet_delivered(authentic_link, packet)  # same frame content


class TestDefenseCommon:
    def test_extract_chips_sources(self, authentic_link):
        packet = transmit_once(authentic_link, defense_receiver(), None)
        quadrature = extract_chips(packet, "quadrature")
        matched = extract_chips(packet, "matched_filter")
        assert quadrature.size > 0 and matched.size > 0
        with pytest.raises(ValueError):
            extract_chips(packet, "esp")

    def test_chip_noise_conversion_value(self):
        # sps=2: pulse energy 2 -> chip noise = sigma^2 / 4.
        assert matched_filter_chip_noise_variance(0.4, 2) == pytest.approx(0.1)

    def test_chip_noise_none_for_quadrature(self, authentic_link):
        packet = transmit_once(authentic_link, defense_receiver(), 10.0, rng=1)
        assert chip_noise_variance_for(packet, "quadrature") is None
        assert chip_noise_variance_for(packet, "matched_filter") is not None

    def test_collect_statistics_counts(self, authentic_link):
        samples = collect_statistics(
            authentic_link, CumulantDetector(), 15.0, count=4, rng=2
        )
        assert 1 <= len(samples) <= 4
        assert all(s.distance_squared >= 0 for s in samples)
        assert mean_distance_squared(samples) >= 0

    def test_mean_of_empty_is_nan(self):
        assert np.isnan(mean_distance_squared([]))

    def test_noise_corrected_statistics_smaller(self, authentic_link):
        plain = collect_statistics(
            authentic_link, CumulantDetector(), 8.0, count=5, rng=3,
            chip_source="matched_filter", noise_corrected=False,
        )
        corrected = collect_statistics(
            authentic_link, CumulantDetector(), 8.0, count=5, rng=3,
            chip_source="matched_filter", noise_corrected=True,
        )
        assert mean_distance_squared(corrected) < mean_distance_squared(plain)
