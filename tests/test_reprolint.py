"""Tests for ``repro.analysis`` — the reprolint invariant checker.

Every rule R001-R007 gets at least one fixture that must fire and one
that must stay silent; suppression comments, the JSON reporter schema,
and a self-check over the real repository round out the contract in
``docs/STATIC_ANALYSIS.md``.

The fixture snippets live in string literals, which the AST-based rules
never mistake for code — the self-check below depends on that.
"""

import json
import os
import textwrap

import pytest

from repro.analysis import (
    all_rules,
    check_source,
    iter_python_files,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.diagnostics import Diagnostic, SuppressionIndex
from repro.analysis.registry import rule

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Role-carrying fixture paths (classification mirrors on-disk layout).
LIB = "src/repro/demo/module.py"
TEST = "tests/test_demo.py"


def codes(source, filename=LIB):
    """The set of rule codes check_source reports for one snippet."""
    return {d.code for d in check_source(textwrap.dedent(source), filename)}


class TestR001LegacyRng:
    def test_stdlib_random_import_fires_in_library(self):
        assert "R001" in codes("import random\n")
        assert "R001" in codes("from random import choice\n")

    def test_stdlib_random_usage_fires_in_library(self):
        assert "R001" in codes(
            """
            import random

            def pick(items):
                return random.choice(items)
            """
        )

    def test_stdlib_random_allowed_in_tests(self):
        assert codes("import random\n", filename=TEST) == set()

    def test_numpy_legacy_free_functions_fire_everywhere(self):
        snippet = """
            import numpy as np

            noise = np.random.rand(4)
        """
        assert "R001" in codes(snippet)
        assert "R001" in codes(snippet, filename=TEST)

    def test_numpy_legacy_from_import_fires(self):
        assert "R001" in codes("from numpy.random import rand\n")

    def test_numpy_random_module_alias_resolves(self):
        assert "R001" in codes(
            """
            from numpy import random as nr

            def shuffle(values):
                nr.shuffle(values)
            """
        )

    def test_seeded_generator_api_is_allowed(self):
        assert codes(
            """
            import numpy as np

            rng = np.random.default_rng(7)
            sequence = np.random.SeedSequence(7)
            generator = np.random.Generator(np.random.PCG64(7))
            """
        ) == set()


class TestR002RngThreading:
    def test_unseeded_default_rng_fires(self):
        assert "R002" in codes(
            """
            import numpy as np

            def sample():
                return np.random.default_rng()
            """
        )

    def test_zero_arg_ensure_rng_fires(self):
        assert "R002" in codes(
            """
            from repro.utils.rng import ensure_rng

            def sample():
                return ensure_rng()
            """
        )

    def test_public_function_without_rng_parameter_fires(self):
        assert "R002" in codes(
            """
            from repro.utils.rng import ensure_rng

            def sample_noise(count):
                generator = ensure_rng(42)
                return generator
            """
        )

    def test_threaded_rng_parameter_is_allowed(self):
        assert codes(
            """
            from repro.utils.rng import ensure_rng

            def sample_noise(count, rng=None):
                generator = ensure_rng(rng)
                return generator
            """
        ) == set()

    def test_rng_module_itself_is_exempt(self):
        assert codes(
            """
            import numpy as np

            def ensure_rng(rng=None):
                if rng is None:
                    return np.random.default_rng()
                return rng
            """,
            filename="src/repro/utils/rng.py",
        ) == set()


class TestR003TrialPicklability:
    def test_lambda_trial_fires(self):
        assert "R003" in codes(
            """
            def runner(session):
                return session.run(lambda c, a, r: 1, 10)
            """
        )

    def test_nested_def_trial_fires(self):
        assert "R003" in codes(
            """
            def runner(session):
                def trial(context, static_args, rng):
                    return 1
                return session.run(trial, 10)
            """
        )

    def test_lambda_assigned_name_fires(self):
        assert "R003" in codes(
            """
            def runner(engine_session):
                trial = lambda c, a, r: 1
                return engine_session.run(trial, 10)
            """
        )

    def test_module_level_trial_is_allowed(self):
        assert codes(
            """
            def trial(context, static_args, rng):
                return 1

            def runner(session):
                return session.run(trial, 10)
            """
        ) == set()

    def test_keyword_trial_argument_is_checked(self):
        assert "R003" in codes(
            """
            def runner(session):
                return session.run(count=10, trial=lambda c, a, r: 1)
            """
        )

    def test_unrelated_run_receivers_are_ignored(self):
        assert codes(
            """
            def start(app):
                return app.run(lambda: 1)
            """
        ) == set()


class TestR004TelemetryDiscipline:
    def test_raw_clock_reads_fire(self):
        assert "R004" in codes(
            """
            import time

            def measure():
                return time.time()
            """
        )
        assert "R004" in codes(
            """
            from time import perf_counter

            def measure():
                return perf_counter()
            """
        )

    def test_time_sleep_is_not_a_clock_read(self):
        assert codes(
            """
            import time

            def pause():
                time.sleep(0.1)
            """
        ) == set()

    def test_naked_span_call_fires(self):
        assert "R004" in codes(
            """
            from repro.telemetry import get_telemetry

            def leak():
                telemetry = get_telemetry()
                handle = telemetry.span("stage")
                return handle
            """
        )
        assert "R004" in codes(
            """
            from repro.telemetry import get_telemetry

            def leak():
                get_telemetry().span("stage")
            """
        )

    def test_with_span_is_allowed(self):
        assert codes(
            """
            from repro.telemetry import get_telemetry

            def timed():
                telemetry = get_telemetry()
                with telemetry.span("stage"):
                    pass
            """
        ) == set()

    def test_telemetry_package_owns_the_clock(self):
        assert codes(
            """
            import time

            def now():
                return time.perf_counter()
            """,
            filename="src/repro/telemetry/core.py",
        ) == set()


class TestR005DecibelHygiene:
    def test_missing_db_suffix_fires(self):
        assert "R005" in codes(
            """
            import numpy as np

            def budget(power):
                snr = 10.0 * np.log10(power)
                return snr
            """
        )

    def test_twenty_log10_and_attribute_targets_fire(self):
        assert "R005" in codes(
            """
            import math

            class Budget:
                def set_loss(self, d):
                    self.loss = 20.0 * math.log10(d)
            """
        )

    def test_suffixed_names_are_allowed(self):
        assert codes(
            """
            import numpy as np

            def budget(power, bandwidth):
                snr_db = 10.0 * np.log10(power)
                noise_dbm = 10.0 * np.log10(bandwidth) - 174.0
                return snr_db, noise_dbm
            """
        ) == set()

    def test_double_de_db_conversion_fires(self):
        assert "R005" in codes(
            """
            def broken(snr_db):
                return 10.0 ** ((10.0 ** (snr_db / 10.0)) / 10.0)
            """
        )

    def test_single_de_db_conversion_is_allowed(self):
        assert codes(
            """
            def to_linear(snr_db):
                return 10.0 ** (snr_db / 10.0)

            def to_amplitude(gain_db):
                return 10.0 ** (gain_db / 20.0)
            """
        ) == set()


class TestR006LibraryHygiene:
    def test_mutable_defaults_fire(self):
        assert "R006" in codes("def f(items=[]):\n    return items\n")
        assert "R006" in codes("def f(table={}):\n    return table\n")
        assert "R006" in codes("def f(seen=set()):\n    return seen\n")
        assert "R006" in codes(
            "def f(*, out=list()):\n    return out\n", filename=TEST
        )

    def test_bare_except_fires_everywhere(self):
        snippet = """
            def guarded():
                try:
                    return 1
                except:
                    return 0
        """
        assert "R006" in codes(snippet)
        assert "R006" in codes(snippet, filename=TEST)

    def test_overbroad_except_fires_in_library_only(self):
        snippet = """
            def guarded():
                try:
                    return 1
                except Exception:
                    return 0
        """
        assert "R006" in codes(snippet)
        assert codes(snippet, filename=TEST) == set()

    def test_specific_handlers_and_none_defaults_are_allowed(self):
        assert codes(
            """
            def guarded(items=None):
                try:
                    return list(items or ())
                except (TypeError, ValueError):
                    return []
            """
        ) == set()


class TestR007NoDirectOutput:
    def test_print_fires_in_library(self):
        assert "R007" in codes(
            """
            def describe(value):
                print(value)
            """
        )

    def test_stream_writes_fire_in_library(self):
        assert "R007" in codes(
            """
            import sys

            def describe(value):
                sys.stdout.write(str(value))
            """
        )
        assert "R007" in codes(
            """
            import sys

            def warn(message):
                sys.stderr.writelines([message])
            """
        )

    def test_tests_and_cli_modules_are_exempt(self):
        snippet = "print('hello')\n"
        assert codes(snippet, filename=TEST) == set()
        assert codes(snippet, filename="src/repro/cli.py") == set()
        assert codes(snippet, filename="src/repro/analysis/__main__.py") == set()

    def test_reporter_and_sink_modules_are_exempt(self):
        snippet = "import sys\nsys.stderr.write('x')\n"
        assert codes(snippet, filename="src/repro/telemetry/events.py") == set()
        assert codes(snippet, filename="src/repro/telemetry/report.py") == set()
        assert codes(
            snippet, filename="src/repro/analysis/reporters.py"
        ) == set()
        assert codes(
            snippet, filename="src/repro/utils/terminal_plot.py"
        ) == set()

    def test_returning_strings_is_the_blessed_path(self):
        assert codes(
            """
            def describe(value):
                return f"value: {value}"
            """
        ) == set()


class TestR012NoDirectEngineWiring:
    def test_import_fires_in_driver_modules(self):
        assert "R012" in codes(
            """
            from repro.experiments.engine import MonteCarloEngine
            """
        )
        assert "R012" in codes(
            """
            from repro.experiments.checkpoint import open_checkpoint_store
            """
        )
        assert "R012" in codes(
            """
            from repro.experiments.adaptive import AdaptiveSweep
            """
        )

    def test_attribute_access_fires(self):
        assert "R012" in codes(
            """
            from repro.experiments import engine

            def build():
                return engine.MonteCarloEngine()
            """
        )

    def test_blessed_homes_are_exempt(self):
        snippet = """
            from repro.experiments.engine import MonteCarloEngine

            def build():
                return MonteCarloEngine()
        """
        for home in (
            "src/repro/experiments/sweep.py",
            "src/repro/experiments/engine.py",
            "src/repro/experiments/checkpoint.py",
            "src/repro/experiments/adaptive.py",
            "src/repro/experiments/bench.py",
            "src/repro/experiments/__init__.py",
        ):
            assert codes(snippet, filename=home) == set()

    def test_tests_are_exempt(self):
        assert codes(
            "from repro.experiments.engine import MonteCarloEngine\n",
            filename=TEST,
        ) == set()

    def test_spec_based_drivers_stay_silent(self):
        assert codes(
            """
            from repro.experiments.sweep import SweepSpec, run_sweep

            def run(rng=None):
                return run_sweep(SPEC, rng=rng)
            """
        ) == set()


class TestSuppression:
    def test_same_line_disable(self):
        assert codes("import random  # reprolint: disable=R001\n") == set()

    def test_standalone_comment_covers_next_line(self):
        assert codes(
            "# reprolint: disable=R001\nimport random\n"
        ) == set()

    def test_disable_all_and_disable_file(self):
        assert codes("import random  # reprolint: disable=all\n") == set()
        assert codes(
            "import random\n\n\n# reprolint: disable-file=R001\n"
        ) == set()

    def test_unrelated_code_still_fires(self):
        assert codes(
            "import random  # reprolint: disable=R004\n"
        ) == {"R001"}

    def test_marker_inside_string_is_ignored(self):
        diagnostics = check_source(
            'import random\nnote = "# reprolint: disable-file=R001"\n', LIB
        )
        assert {d.code for d in diagnostics} == {"R001"}


class TestReporters:
    def _sample(self):
        return check_source("import random\n", LIB)

    def test_text_report_lists_findings_and_summary(self):
        diagnostics = self._sample()
        report = render_text(diagnostics, files_checked=1)
        assert f"{LIB}:1:1: R001" in report
        assert "1 violation(s) in 1 file(s)" in report
        assert "OK:" in render_text([], files_checked=3)

    def test_json_report_schema(self):
        diagnostics = self._sample()
        payload = json.loads(render_json(diagnostics, files_checked=1))
        assert payload["version"] == 2
        assert payload["tool"] == "reprolint"
        assert payload["summary"] == {
            "files_checked": 1,
            "violations": 1,
            "by_code": {"R001": 1},
            "cache_hits": 0,
            "cache_misses": 0,
            "baselined": 0,
        }
        (item,) = payload["diagnostics"]
        assert set(item) == {"path", "line", "column", "code", "message"}
        assert item["path"] == LIB
        assert item["line"] == 1
        assert item["code"] == "R001"

    def test_diagnostics_sort_by_location(self):
        unsorted = [
            Diagnostic("b.py", 1, 1, "R001", "x"),
            Diagnostic("a.py", 9, 1, "R004", "x"),
            Diagnostic("a.py", 2, 1, "R006", "x"),
        ]
        ordered = sorted(unsorted)
        assert [(d.path, d.line) for d in ordered] == [
            ("a.py", 2), ("a.py", 9), ("b.py", 1),
        ]


class TestRunnerAndRegistry:
    def test_syntax_error_becomes_diagnostic(self):
        (diagnostic,) = check_source("def broken(:\n", LIB)
        assert diagnostic.code == "E001"

    def test_iter_python_files_skips_pycache(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "ok.cpython-311.py").write_text("")
        (tmp_path / "pkg" / "notes.txt").write_text("")
        found = list(iter_python_files([str(tmp_path)]))
        assert [os.path.basename(f) for f in found] == ["ok.py"]

    def test_run_lint_walks_directories(self, tmp_path):
        bad = tmp_path / "repro" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
        diagnostics, files_checked = run_lint([str(tmp_path)])
        assert files_checked == 1
        assert [d.code for d in diagnostics] == ["R001"]

    def test_select_and_ignore_filter_rules(self):
        source = "import random\n\ndef f(x=[]):\n    return x\n"
        all_codes = {d.code for d in check_source(source, LIB)}
        assert all_codes == {"R001", "R006"}
        only = {
            d.code
            for d in check_source(source, LIB, rules=all_rules(select=["R006"]))
        }
        assert only == {"R006"}
        ignored = {
            d.code
            for d in check_source(source, LIB, rules=all_rules(ignore=["R006"]))
        }
        assert ignored == {"R001"}

    def test_unknown_codes_raise(self):
        with pytest.raises(KeyError):
            all_rules(select=["R999"])

    def test_registry_rejects_malformed_rules(self):
        with pytest.raises(ValueError):
            @rule
            class MissingCode:
                name = "nameless"
                rationale = "no code attribute"

                def check(self, module):
                    return []

    def test_duplicate_codes_are_rejected(self):
        with pytest.raises(ValueError):
            @rule
            class DuplicateR001:
                code = "R001"
                name = "duplicate"
                rationale = "already taken"

                def check(self, module):
                    return []


class TestCliAndSelfCheck:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006", "R007",
                     "R012"):
            assert code in out

    def test_violations_exit_1_with_text_report(self, tmp_path, capsys):
        bad = tmp_path / "repro" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import random\n")
        assert lint_main([str(tmp_path)]) == 1
        assert "R001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert lint_main([str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["violations"] == 0

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert lint_main([str(empty)]) == 2
        assert lint_main(["--select", "R999", str(empty)]) == 2
        capsys.readouterr()

    def test_repo_self_check_is_clean(self, capsys):
        """`repro-lint src tests` must exit 0 on this repository."""
        src = os.path.join(REPO_ROOT, "src")
        tests = os.path.join(REPO_ROOT, "tests")
        assert lint_main([src, tests]) == 0
        assert "no violations" in capsys.readouterr().out
