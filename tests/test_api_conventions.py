"""Meta-tests: API conventions the whole package must follow.

* every public module, class, and function carries a docstring;
* every subpackage's ``__all__`` is sorted and resolvable;
* every error raised at API boundaries derives from ReproError.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro",
    "repro.attack",
    "repro.channel",
    "repro.defense",
    "repro.experiments",
    "repro.hardware",
    "repro.link",
    "repro.telemetry",
    "repro.utils",
    "repro.wifi",
    "repro.zigbee",
]


def _walk_modules():
    for package_name in SUBPACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__ for module in _walk_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_callable_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name, member in vars(module).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isclass(member) or inspect.isfunction(member)):
                    continue
                if getattr(member, "__module__", None) != module.__name__:
                    continue  # re-export; documented at its home
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    def test_public_methods_documented(self):
        undocumented = []
        for module in _walk_modules():
            for name, member in vars(module).items():
                if name.startswith("_") or not inspect.isclass(member):
                    continue
                if getattr(member, "__module__", None) != module.__name__:
                    continue
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    # inspect.getdoc falls back to the parent class, so an
                    # override of a documented abstract method passes.
                    if not (inspect.getdoc(getattr(member, method_name)) or "").strip():
                        undocumented.append(
                            f"{module.__name__}.{name}.{method_name}"
                        )
        assert undocumented == []


class TestAllExports:
    @pytest.mark.parametrize("package_name", SUBPACKAGES)
    def test_all_sorted_and_resolvable(self, package_name):
        package = importlib.import_module(package_name)
        if not hasattr(package, "__all__"):
            pytest.skip(f"{package_name} has no __all__")
        exported = list(package.__all__)
        assert exported == sorted(exported), (
            f"{package_name}.__all__ is not sorted"
        )
        for name in exported:
            assert hasattr(package, name), f"{package_name}.{name} missing"


class TestErrorHierarchy:
    def test_all_custom_errors_derive_from_repro_error(self):
        from repro import errors

        for name, member in vars(errors).items():
            if inspect.isclass(member) and issubclass(member, Exception):
                if member is not errors.ReproError:
                    assert issubclass(member, errors.ReproError), name
