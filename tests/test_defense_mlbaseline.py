"""Tests for the logistic-regression baseline detector."""

import numpy as np
import pytest

from repro.defense.constellation import reconstruct_constellation
from repro.defense.mlbaseline import (
    FEATURE_NAMES,
    LogisticDetector,
    build_dataset,
    feature_vector,
)
from repro.errors import ConfigurationError


def _synthetic_dataset(n_per=40, seed=0):
    """Separable 2-class blobs in feature space."""
    rng = np.random.default_rng(seed)
    class0 = rng.normal([1.0, 1.0, -1.0, 0.0, 4.0], 0.05, size=(n_per, 5))
    class1 = rng.normal([0.6, 0.7, -0.7, 0.3, 3.0], 0.05, size=(n_per, 5))
    features = np.vstack([class0, class1])
    labels = np.concatenate([np.zeros(n_per), np.ones(n_per)])
    return features, labels


class TestFeatureVector:
    def test_shape_and_names(self):
        rng = np.random.default_rng(0)
        chips = 2.0 * rng.integers(0, 2, 512) - 1.0
        points = reconstruct_constellation(chips)
        vector = feature_vector(points)
        assert vector.shape == (len(FEATURE_NAMES),)

    def test_clean_qpsk_values(self):
        rng = np.random.default_rng(1)
        chips = 2.0 * rng.integers(0, 2, 2048) - 1.0
        vector = feature_vector(reconstruct_constellation(chips))
        assert vector[0] == pytest.approx(1.0, abs=0.05)   # Re C40
        assert vector[2] == pytest.approx(-1.0, abs=0.05)  # C42
        assert vector[4] == pytest.approx(4.0, abs=0.3)    # C63


class TestLogisticDetector:
    def test_learns_separable_classes(self):
        features, labels = _synthetic_dataset()
        model = LogisticDetector().fit(features, labels)
        assert model.score(features, labels) == 1.0

    def test_probabilities_ordered(self):
        features, labels = _synthetic_dataset()
        model = LogisticDetector().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert probabilities[labels == 1].min() > probabilities[labels == 0].max()

    def test_generalizes_to_held_out(self):
        features, labels = _synthetic_dataset(seed=2)
        train = np.arange(labels.size) % 2 == 0
        model = LogisticDetector().fit(features[train], labels[train])
        assert model.score(features[~train], labels[~train]) >= 0.95

    def test_untrained_raises(self):
        with pytest.raises(ConfigurationError):
            LogisticDetector().predict_proba(np.zeros((1, 5)))

    def test_rejects_single_class(self):
        features = np.random.default_rng(0).normal(size=(10, 5))
        with pytest.raises(ConfigurationError):
            LogisticDetector().fit(features, np.zeros(10))

    def test_separates_real_attack_data(self, authentic_link, emulated_link):
        """End-to-end: features from actual receptions are separable."""
        from repro.channel.awgn import AwgnChannel
        from repro.experiments.defense_common import defense_receiver

        receiver = defense_receiver()
        constellations, labels = [], []
        for i in range(6):
            for label, link in ((0, authentic_link), (1, emulated_link)):
                noisy = AwgnChannel(15, rng=10 * i + label).apply(link.on_air)
                packet = receiver.receive(noisy)
                constellations.append(
                    reconstruct_constellation(
                        packet.diagnostics.psdu_quadrature_soft_chips
                    )
                )
                labels.append(label)
        features, y = build_dataset(constellations, labels)
        model = LogisticDetector().fit(features, y)
        assert model.score(features, y) == 1.0


class TestBuildDataset:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigurationError):
            build_dataset([np.ones(4, dtype=complex)], [0, 1])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            build_dataset([], [])
