"""Tests for the full emulation pipeline — the paper's core claims."""

import numpy as np
import pytest

from repro.attack.allocation import allocate_baseband_bins, allocate_rf_data_points
from repro.attack.codeword import project_onto_codewords
from repro.attack.emulator import EmulationConfig, WaveformEmulationAttack, emulate_waveform
from repro.errors import ConfigurationError, EmulationError
from repro.utils.signal_ops import Waveform, frequency_shift
from repro.wifi.constants import CP_LENGTH, NUM_DATA_SUBCARRIERS
from repro.zigbee.receiver import ReceiverConfig, ZigBeeReceiver


class TestAllocation:
    def test_baseband_bins_placed(self):
        bins = allocate_baseband_bins(np.array([0, 63]), np.array([1.0, 2.0j]))
        assert bins[0] == 1.0
        assert bins[63] == 2.0j
        assert np.count_nonzero(bins) == 2

    def test_baseband_rejects_misaligned(self):
        with pytest.raises(ConfigurationError):
            allocate_baseband_bins(np.array([0]), np.array([1.0, 2.0]))

    def test_rf_allocation_targets_overlap_band(self):
        indexes = np.array([0, 1, 2, 3, 61, 62, 63])
        points = np.ones(7, dtype=complex)
        allocation = allocate_rf_data_points(indexes, points, rng=0)
        assert allocation.data_points.size == NUM_DATA_SUBCARRIERS
        # The shifted logical subcarriers are -16 + {0,1,2,3,-3,-2,-1},
        # all inside the paper's [-20, -8] band.
        from repro.wifi.constants import DATA_SUBCARRIERS

        for position in allocation.zigbee_positions:
            assert -20 <= DATA_SUBCARRIERS[position] <= -8

    def test_rf_allocation_rejects_bad_offset(self):
        indexes = np.array([31])  # logical +31 shifted by -16 -> +15 is data
        points = np.ones(1, dtype=complex)
        allocation = allocate_rf_data_points(indexes, points, rng=0)
        assert allocation.zigbee_positions.size == 1
        with pytest.raises(EmulationError):
            allocate_rf_data_points(
                np.array([32]), points, rng=0  # logical -32 -> -48: not data
            )


class TestEmulationPipeline:
    def test_scale_is_optimized(self, emulation_result):
        # The optimum scale for unit-envelope ZigBee waveforms sits near
        # alpha ~ 33 for the unit-power 64-QAM table (equivalent to the
        # paper's sqrt(26) on integer levels: 33.5/sqrt(42)*7*sqrt(2) ~ 51).
        assert 25 < emulation_result.scale < 45

    def test_keeps_seven_bins(self, emulation_result):
        assert emulation_result.selection.indexes.size == 7

    def test_body_reproduced_cp_region_not(self, emulation_result):
        original = emulation_result.chunks
        emulated = emulation_result.emulated_chunks
        body_error = np.mean(
            np.abs(original[:, CP_LENGTH:] - emulated[:, CP_LENGTH:]) ** 2
        )
        cp_error = np.mean(
            np.abs(original[:, :CP_LENGTH] - emulated[:, :CP_LENGTH]) ** 2
        )
        assert body_error < 0.15
        assert cp_error > 5 * body_error

    def test_emulated_chunk_has_cyclic_prefix(self, emulation_result):
        chunk = emulation_result.emulated_chunks[0]
        assert np.allclose(chunk[:CP_LENGTH], chunk[-CP_LENGTH:])

    def test_emulated_decodes_at_zigbee_receiver(self, emulated_link):
        packet = ZigBeeReceiver().receive(emulated_link.on_air)
        assert packet.decoded and packet.fcs_ok
        assert packet.psdu == emulated_link.sent.ppdu[6:]

    def test_hamming_distances_in_paper_band(self, emulated_link):
        packet = ZigBeeReceiver().receive(emulated_link.on_air)
        distances = packet.diagnostics.hamming_distances
        assert min(distances) >= 1  # never perfect
        assert max(distances) <= 9  # inside the DSSS tolerance
        assert 2 <= np.mean(distances) <= 8  # the paper's 4-8 band

    def test_quantization_disabled_reduces_error(self, authentic_link):
        with_quant = emulate_waveform(authentic_link.sent.waveform)
        without = emulate_waveform(
            authentic_link.sent.waveform, config=EmulationConfig(quantize=False)
        )
        assert without.emulation_error() <= with_quant.emulation_error()

    def test_more_subcarriers_lower_error(self, authentic_link):
        narrow = emulate_waveform(
            authentic_link.sent.waveform, config=EmulationConfig(num_subcarriers=3)
        )
        wide = emulate_waveform(
            authentic_link.sent.waveform, config=EmulationConfig(num_subcarriers=15)
        )
        assert wide.emulation_error() < narrow.emulation_error()

    def test_transmit_waveform_prepends_zeros(self, attack, emulation_result):
        on_air = attack.transmit_waveform(emulation_result)
        assert np.allclose(on_air.samples[:10], 0.0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            EmulationConfig(mode="sideband")


class TestRfMode:
    def test_rf_mode_decodes_after_frequency_shift(self, authentic_link):
        """The over-the-air layout: attacker at 2440 MHz, receiver at 2435."""
        result = emulate_waveform(
            authentic_link.sent.waveform, config=EmulationConfig(mode="rf"), rng=3
        )
        # The receiver sees the WiFi baseband shifted by +5 MHz.
        received = Waveform(
            frequency_shift(result.waveform.samples, 5e6, 20e6), 20e6
        )
        packet = ZigBeeReceiver().receive(received)
        assert packet.decoded and packet.fcs_ok
        assert packet.psdu == authentic_link.sent.ppdu[6:]

    def test_rf_mode_unreadable_without_shift(self, authentic_link):
        """At the WiFi centre the ZigBee band is 5 MHz off — nothing decodes."""
        from repro.errors import SynchronizationError

        result = emulate_waveform(
            authentic_link.sent.waveform, config=EmulationConfig(mode="rf"), rng=3
        )
        receiver = ZigBeeReceiver()
        try:
            packet = receiver.receive(result.waveform)
            delivered = packet.fcs_ok
        except SynchronizationError:
            delivered = False
        assert not delivered


class TestCodewordProjection:
    def test_projection_returns_legal_points(self, emulation_result):
        # Build two whole OFDM symbols worth of desired points from the
        # quantized constellation points cycled into a 48-point grid.
        from repro.wifi.qam import modulation_for_name

        rng = np.random.default_rng(0)
        table = modulation_for_name("64qam").constellation()
        desired = table[rng.integers(0, 64, 96)]
        projection = project_onto_codewords(desired, rate_mbps=54)
        assert projection.legal_points.size == desired.size
        assert 0.0 <= projection.point_agreement <= 1.0
        # Legal points are constellation points.
        rounded = set(np.round(table, 9))
        assert all(np.round(p, 9) in rounded for p in projection.legal_points)

    def test_projection_of_legal_frame_is_identity(self):
        """Points produced by a real transmitter survive unchanged."""
        from repro.wifi.transmitter import WifiTransmitter

        tx = WifiTransmitter(rate_mbps=54, include_preamble=False)
        result = tx.transmit_psdu(bytes(range(40)))
        projection = project_onto_codewords(result.data_points, rate_mbps=54)
        assert projection.point_agreement == pytest.approx(1.0)
        assert projection.extra_distortion == pytest.approx(0.0, abs=1e-18)

    def test_rejects_ragged_points(self):
        with pytest.raises(ConfigurationError):
            project_onto_codewords(np.ones(50, dtype=complex))
