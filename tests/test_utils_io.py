"""Tests for waveform persistence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.io import load_waveform, save_waveform
from repro.utils.signal_ops import Waveform


class TestWaveformIo:
    def test_roundtrip(self, tmp_path):
        original = Waveform(
            np.exp(2j * np.pi * 0.01 * np.arange(256)), 4e6
        )
        path = tmp_path / "capture.npz"
        save_waveform(path, original, {"payload": "00042", "snr_db": "12"})
        loaded, metadata = load_waveform(path)
        assert np.allclose(loaded.samples, original.samples)
        assert loaded.sample_rate_hz == 4e6
        assert metadata == {"payload": "00042", "snr_db": "12"}

    def test_suffix_appended(self, tmp_path):
        waveform = Waveform(np.ones(8, dtype=complex), 1.0)
        save_waveform(tmp_path / "capture", waveform)
        loaded, metadata = load_waveform(tmp_path / "capture")
        assert len(loaded) == 8
        assert metadata == {}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_waveform(tmp_path / "nothing.npz")

    def test_non_capture_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, unrelated=np.arange(4))
        with pytest.raises(ConfigurationError):
            load_waveform(path)

    def test_bad_metadata_rejected(self, tmp_path):
        waveform = Waveform(np.ones(4, dtype=complex), 1.0)
        with pytest.raises(ConfigurationError):
            save_waveform(tmp_path / "x.npz", waveform, {"k": 3})

    def test_transmitted_frame_roundtrip(self, tmp_path, authentic_link):
        """A real frame survives save/load and still decodes."""
        from repro.zigbee.receiver import ZigBeeReceiver

        path = tmp_path / "frame.npz"
        save_waveform(path, authentic_link.on_air, {"kind": "authentic"})
        loaded, metadata = load_waveform(path)
        assert metadata["kind"] == "authentic"
        packet = ZigBeeReceiver().receive(loaded)
        assert packet.fcs_ok
