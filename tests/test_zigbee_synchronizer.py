"""Tests for packet detection, timing, phase and CFO recovery."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SynchronizationError
from repro.utils.signal_ops import Waveform, frequency_shift
from repro.zigbee.synchronizer import Synchronizer, apply_corrections
from repro.zigbee.transmitter import ZigBeeTransmitter


@pytest.fixture(scope="module")
def frame_waveform():
    return ZigBeeTransmitter().transmit_payload(b"sync-test").waveform


def _padded(waveform, lead, tail=50, scale=1.0):
    samples = np.concatenate(
        [np.zeros(lead, dtype=complex), scale * waveform.samples,
         np.zeros(tail, dtype=complex)]
    )
    return Waveform(samples, waveform.sample_rate_hz)


class TestSynchronizer:
    def test_exact_timing(self, frame_waveform):
        sync = Synchronizer().synchronize(_padded(frame_waveform, 137))
        assert sync.start_index == 137
        assert sync.correlation > 0.99

    def test_phase_estimate(self, frame_waveform):
        theta = 0.9
        padded = _padded(frame_waveform, 64)
        rotated = padded.with_samples(padded.samples * np.exp(1j * theta))
        sync = Synchronizer(estimate_cfo=False).synchronize(rotated)
        assert sync.phase_rad == pytest.approx(theta, abs=0.02)

    def test_cfo_estimate(self, frame_waveform):
        cfo = 2000.0
        padded = _padded(frame_waveform, 0)
        shifted = padded.with_samples(
            frequency_shift(padded.samples, cfo, padded.sample_rate_hz)
        )
        sync = Synchronizer().synchronize(shifted)
        assert sync.cfo_hz == pytest.approx(cfo, rel=0.15)

    def test_scale_invariance(self, frame_waveform):
        sync = Synchronizer().synchronize(_padded(frame_waveform, 30, scale=0.01))
        assert sync.start_index == 30
        assert sync.correlation > 0.99

    def test_noise_only_raises(self):
        rng = np.random.default_rng(0)
        noise = 0.1 * (rng.standard_normal(4000) + 1j * rng.standard_normal(4000))
        with pytest.raises(SynchronizationError):
            Synchronizer().synchronize(Waveform(noise, 4e6))

    def test_short_waveform_raises(self):
        with pytest.raises(SynchronizationError):
            Synchronizer().synchronize(Waveform(np.ones(10, dtype=complex), 4e6))

    def test_rate_mismatch_raises(self, frame_waveform):
        wrong_rate = Waveform(frame_waveform.samples, 8e6)
        with pytest.raises(ConfigurationError):
            Synchronizer().synchronize(wrong_rate)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            Synchronizer(detection_threshold=1.5)


class TestApplyCorrections:
    def test_removes_phase_and_trims(self, frame_waveform):
        theta = -0.4
        padded = _padded(frame_waveform, 25)
        rotated = padded.with_samples(padded.samples * np.exp(1j * theta))
        sync = Synchronizer(estimate_cfo=False).synchronize(rotated)
        corrected = apply_corrections(rotated, sync)
        n = len(frame_waveform)
        assert np.allclose(corrected[:n], frame_waveform.samples, atol=0.05)
