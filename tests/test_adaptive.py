"""Adaptive precision-targeted Monte Carlo: estimators, sweep, parity."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import table2_attack_awgn
from repro.experiments.adaptive import (
    AdaptiveConfig,
    AdaptiveSweep,
    MeanEstimator,
    RateEstimator,
    normal_quantile,
    wilson_interval,
)
from repro.experiments.engine import MonteCarloEngine
from repro.telemetry import get_telemetry
from repro.telemetry.events import MemoryEventSink, get_event_stream


def _coin_trial(context, args, rng):
    (p,) = args
    return bool(rng.random() < p)


def _gauss_trial(context, args, rng):
    mean, sigma = args
    return float(mean + sigma * rng.standard_normal())


class TestIntervalMath:
    def test_normal_quantile_matches_known_z_scores(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-5)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_normal_quantile_rejects_endpoints(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                normal_quantile(p)

    def test_wilson_interval_brackets_the_estimate(self):
        for successes, trials in ((0, 10), (5, 10), (10, 10), (1, 1000)):
            low, high = wilson_interval(successes, trials)
            assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_wilson_interval_never_collapses_at_the_boundary(self):
        low, high = wilson_interval(20, 20)
        assert high - low > 0.0
        low, high = wilson_interval(0, 20)
        assert high - low > 0.0

    def test_wilson_interval_empty_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_interval_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigurationError):
            wilson_interval(-1, 3)


class TestEstimators:
    def test_rate_estimator_counts_falsy_rows_as_failures(self):
        estimator = RateEstimator()
        estimator.add([True, False, None, 1, 0])
        assert estimator.observations == 5
        assert estimator.successes == 2

    def test_rate_converges_symmetrically_for_p_and_one_minus_p(self):
        high = RateEstimator()
        high.add([True] * 30)
        low = RateEstimator()
        low.add([False] * 30)
        assert high.converged(0.1) == low.converged(0.1)

    def test_rate_estimator_unconverged_while_empty(self):
        estimator = RateEstimator()
        assert not estimator.converged(0.5)
        assert estimator.half_width() == float("inf")

    def test_mean_estimator_matches_numpy_welford(self):
        rng = np.random.default_rng(0)
        values = list(rng.normal(3.0, 0.5, 100))
        estimator = MeanEstimator()
        estimator.add(values)
        assert estimator.estimate == pytest.approx(np.mean(values), rel=1e-12)
        assert estimator.variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-9
        )

    def test_mean_estimator_skips_none_rows(self):
        estimator = MeanEstimator()
        estimator.add([1.0, None, 3.0, None])
        assert estimator.count == 2
        assert estimator.estimate == pytest.approx(2.0)

    def test_mean_estimator_zero_variance_converges(self):
        estimator = MeanEstimator()
        estimator.add([2.5] * 5)
        assert estimator.converged(0.01)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(rel_precision=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(confidence=0.4)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(min_trials=0)
        with pytest.raises(ConfigurationError):
            AdaptiveConfig(max_trials=0)

    def test_config_chunk_and_cap_resolution(self):
        config = AdaptiveConfig()
        assert config.resolve_chunk(100) == 12
        assert config.resolve_chunk(4) == 4
        assert config.resolve_cap(100) == 400
        assert AdaptiveConfig(max_trials=50).resolve_cap(20) == 50
        # The cap never undercuts the base budget.
        assert AdaptiveConfig(max_trials=5).resolve_cap(20) == 20


class TestAdaptiveSweep:
    def _session(self):
        return MonteCarloEngine().session({})

    def test_deterministic_point_converges_at_min_trials(self):
        with self._session() as session:
            sweep = AdaptiveSweep(session, 100)
            state = sweep.point(
                _coin_trial, rng=0, static_args=(1.0,),
                estimator=sweep.rate_estimator(), key="sure",
            )
            sweep.settle()
        outcome = state.outcome()
        assert outcome.converged
        assert outcome.trials_used < 100
        assert outcome.estimate == 1.0
        assert sweep.trials_saved == 100 - outcome.trials_used

    def test_boundary_point_receives_reallocated_budget(self):
        with self._session() as session:
            sweep = AdaptiveSweep(
                session, 60, config=AdaptiveConfig(rel_precision=0.05)
            )
            easy = sweep.point(
                _coin_trial, rng=0, static_args=(1.0,),
                estimator=sweep.rate_estimator(), key="easy",
            )
            hard = sweep.point(
                _coin_trial, rng=1, static_args=(0.5,),
                estimator=sweep.rate_estimator(), key="hard",
            )
            sweep.settle()
        assert easy.outcome().trials_used < 60
        # The hard point spends beyond its own base out of the savings.
        assert hard.outcome().trials_used > 60
        assert sweep.trials_executed <= sweep.trials_base

    def test_cap_bounds_reallocation(self):
        with self._session() as session:
            config = AdaptiveConfig(rel_precision=0.05, max_trials=70)
            sweep = AdaptiveSweep(session, 60, config=config)
            easy = sweep.point(
                _coin_trial, rng=0, static_args=(1.0,),
                estimator=sweep.rate_estimator(), key="easy",
            )
            hard = sweep.point(
                _coin_trial, rng=1, static_args=(0.5,),
                estimator=sweep.rate_estimator(), key="hard",
            )
            sweep.settle()
        assert hard.outcome().trials_used <= 70
        assert hard.outcome().capped
        assert not hard.outcome().converged
        assert easy.outcome().converged
        assert easy.outcome().trials_used < 60

    def test_mean_point_converges(self):
        with self._session() as session:
            sweep = AdaptiveSweep(session, 400)
            state = sweep.point(
                _gauss_trial, rng=0, static_args=(10.0, 0.5),
                estimator=sweep.mean_estimator(), key="gauss",
            )
            sweep.settle()
        outcome = state.outcome()
        assert outcome.converged
        assert outcome.trials_used < 400
        assert outcome.estimate == pytest.approx(10.0, abs=0.5)
        half = (outcome.ci_high - outcome.ci_low) / 2.0
        assert half <= 0.1 * abs(outcome.estimate) + 1e-12

    def test_outcome_before_settle_raises(self):
        with self._session() as session:
            sweep = AdaptiveSweep(session, 20)
            state = sweep.point(
                _coin_trial, rng=0, static_args=(1.0,),
                estimator=sweep.rate_estimator(), key="early",
            )
            with pytest.raises(ConfigurationError):
                state.outcome()
            sweep.settle()
            assert state.outcome().trials_used > 0

    def test_point_after_settle_raises(self):
        with self._session() as session:
            sweep = AdaptiveSweep(session, 20)
            sweep.settle()
            with pytest.raises(ConfigurationError):
                sweep.point(_coin_trial, rng=0, static_args=(1.0,))

    def test_settle_emits_point_converged_events_and_counters(self):
        stream = get_event_stream()
        sink = stream.add_sink(MemoryEventSink())
        stream.enable()
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()
        try:
            with self._session() as session:
                sweep = AdaptiveSweep(session, 50, experiment="unit")
                sweep.point(
                    _coin_trial, rng=0, static_args=(1.0,),
                    estimator=sweep.rate_estimator(), key="p1",
                )
                sweep.settle()
            events = [
                e for e in sink.records if e["event"] == "point_converged"
            ]
            counters = telemetry.registry.snapshot()["counters"]
        finally:
            stream.remove_sink(sink)
            stream.disable()
            telemetry.disable()
            telemetry.reset()
        assert len(events) == 1
        assert events[0]["experiment"] == "unit"
        assert events[0]["point"] == "p1"
        assert events[0]["trials_used"] > 0
        assert events[0]["trials_saved"] > 0
        assert events[0]["converged"] is True
        assert counters["engine.trials_saved"] == events[0]["trials_saved"]


class TestAdaptiveFixedParity:
    """The issue's core guarantee: adaptive prefixes are bit-identical."""

    def test_run_until_prefix_matches_fixed_run(self):
        engine = MonteCarloEngine()
        with engine.session({}) as session:
            fixed = session.run(
                _gauss_trial, 40, rng=7, static_args=(0.0, 1.0)
            )
        with engine.session({}) as session:
            incremental = session.run_until(
                _gauss_trial, rng=7, static_args=(0.0, 1.0)
            )
            for step in (5, 11, 3, 21):
                incremental.extend(step)
        assert incremental.results == fixed

    def test_run_until_prefix_matches_for_any_chunking(self):
        engine = MonteCarloEngine()
        with engine.session({}) as session:
            fixed = session.run(
                _coin_trial, 30, rng=11, static_args=(0.5,)
            )
        for chunks in ((30,), (10, 10, 10), (1,) * 30, (16, 14)):
            with engine.session({}) as session:
                incremental = session.run_until(
                    _coin_trial, rng=11, static_args=(0.5,)
                )
                for step in chunks:
                    incremental.extend(step)
            assert incremental.results == fixed

    def test_adaptive_table2_prefix_matches_fixed_outcomes(self):
        """The trials adaptive table2 executes are the fixed run's prefix."""
        fixed = table2_attack_awgn.run(
            snrs_db=(17,), trials=24, include_authentic=False,
            screen_defense=False, rng=5,
        )
        adaptive = table2_attack_awgn.run(
            snrs_db=(17,), trials=24, include_authentic=False,
            screen_defense=False, rng=5, adaptive=True,
        )
        row = adaptive.rows[0]
        assert row["trials_used"] < 24
        # At 17 dB every delivery succeeds, so the prefix rate matches
        # the fixed rate exactly and the CI half-width meets 10%.
        assert row["success_rate"] == fixed.rows[0]["success_rate"]
        assert (row["ci_high"] - row["ci_low"]) / 2.0 <= 0.1

    def test_adaptive_full_budget_reproduces_fixed_rates(self):
        """With convergence unreachable, adaptive spends the exact fixed
        budget and lands on identical rates (same seeds, same trials)."""
        fixed = table2_attack_awgn.run(
            snrs_db=(13, 17), trials=12, include_authentic=True,
            screen_defense=True, rng=9,
        )
        adaptive = table2_attack_awgn.run(
            snrs_db=(13, 17), trials=12, include_authentic=True,
            screen_defense=True, rng=9, adaptive=True,
            rel_precision=0.001, max_trials=12,
        )
        for fixed_row, adaptive_row in zip(fixed.rows, adaptive.rows):
            assert adaptive_row["trials_used"] == 12
            for column in ("success_rate", "authentic_success_rate",
                           "detected_rate"):
                if column in fixed_row:
                    assert adaptive_row[column] == fixed_row[column]

    def test_fixed_mode_rows_unchanged_by_the_adaptive_plumbing(self):
        """Fixed-budget runs stay bit-identical across the refactor:
        serial, chunked, and parallel paths all agree."""
        baseline = table2_attack_awgn.run(
            snrs_db=(15,), trials=10, include_authentic=False,
            screen_defense=False, rng=4,
        )
        chunked = table2_attack_awgn.run(
            snrs_db=(15,), trials=10, include_authentic=False,
            screen_defense=False, rng=4, chunk_size=3,
        )
        assert baseline.rows == chunked.rows


class TestAdaptiveCheckpoint:
    PARAMS = dict(
        snrs_db=(15, 17), trials=16, include_authentic=False,
        screen_defense=False,
    )

    def test_adaptive_resume_honors_trials_used(self, tmp_path):
        first = table2_attack_awgn.run(
            rng=6, adaptive=True, checkpoint_dir=str(tmp_path), **self.PARAMS
        )
        telemetry = get_telemetry()
        telemetry.reset()
        telemetry.enable()
        try:
            resumed = table2_attack_awgn.run(
                rng=6, adaptive=True, checkpoint_dir=str(tmp_path),
                resume=True, **self.PARAMS
            )
            counters = telemetry.registry.snapshot()["counters"]
            assert counters.get("engine.trials", 0) == 0
        finally:
            telemetry.disable()
            telemetry.reset()
        assert resumed.rows == first.rows
        assert all("trials_used" in row for row in resumed.rows)

    def test_adaptive_and_fixed_checkpoints_do_not_mix(self, tmp_path):
        table2_attack_awgn.run(
            rng=6, checkpoint_dir=str(tmp_path), **self.PARAMS
        )
        with pytest.raises(ConfigurationError):
            table2_attack_awgn.run(
                rng=6, adaptive=True, checkpoint_dir=str(tmp_path),
                resume=True, **self.PARAMS
            )
