"""Tests for constellation reconstruction and the cumulant detector."""

import numpy as np
import pytest

from repro.defense.constellation import (
    ConstellationOptions,
    ideal_qpsk_points,
    reconstruct_constellation,
)
from repro.defense.detector import (
    CumulantDetector,
    Hypothesis,
    calibrate_threshold,
)
from repro.errors import ConfigurationError, DetectionError


def _clean_chips(n=512, seed=0):
    rng = np.random.default_rng(seed)
    return 2.0 * rng.integers(0, 2, n) - 1.0


class TestReconstruction:
    def test_clean_chips_land_on_axes(self):
        points = reconstruct_constellation(_clean_chips())
        ideal = ideal_qpsk_points()
        for point in points:
            assert np.min(np.abs(point - ideal)) < 1e-9

    def test_normalized_to_unit_power(self):
        chips = 3.7 * _clean_chips()
        points = reconstruct_constellation(chips)
        assert np.mean(np.abs(points) ** 2) == pytest.approx(1.0)

    def test_rotation_disabled(self):
        options = ConstellationOptions(rotate_to_axes=False)
        points = reconstruct_constellation(_clean_chips(), options)
        # Unrotated points sit on the diagonals.
        assert np.allclose(np.abs(points.real), np.abs(points.imag), atol=1e-9)

    def test_drop_header_chips(self):
        chips = np.concatenate([np.zeros(64), _clean_chips(64)])
        options = ConstellationOptions(drop_header_chips=64)
        points = reconstruct_constellation(chips, options)
        assert points.size == 32

    def test_odd_tail_chip_dropped(self):
        points = reconstruct_constellation(_clean_chips(33))
        assert points.size == 16

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            reconstruct_constellation(np.zeros(1))


class TestDetector:
    def test_clean_qpsk_accepted(self):
        result = CumulantDetector().statistic(_clean_chips(2048))
        assert result.hypothesis is Hypothesis.ZIGBEE_TRANSMITTER
        assert result.distance_squared < 0.01
        assert not result.is_attack

    def test_uniform_noise_far_from_qpsk(self):
        rng = np.random.default_rng(0)
        chips = rng.uniform(-1, 1, 2048)
        result = CumulantDetector().statistic(chips)
        # Uniform chips land near (C40, C42) = (0.5, -0.6): two orders of
        # magnitude above the authentic statistic, flagged by any threshold
        # calibrated per Sec. VII-B.
        assert result.distance_squared > 0.1
        clean = CumulantDetector().statistic(_clean_chips(2048))
        assert result.distance_squared > 30 * clean.distance_squared

    def test_gaussian_chips_rejected(self):
        rng = np.random.default_rng(1)
        result = CumulantDetector().statistic(rng.standard_normal(4096))
        # Gaussian gives C40 ~ 0, C42 ~ 0 -> DE2 ~ 2.
        assert result.distance_squared > 1.0

    def test_abs_c40_variant_immune_to_rotation(self):
        chips = _clean_chips(4096)
        points = reconstruct_constellation(chips)
        rotated = points * np.exp(1j * 0.35)
        plain = CumulantDetector().statistic_from_points(rotated)
        robust = CumulantDetector(use_abs_c40=True).statistic_from_points(rotated)
        assert plain.distance_squared > 0.1  # rotation breaks Re(C40)
        assert robust.distance_squared < 0.01

    def test_noise_variance_correction(self):
        rng = np.random.default_rng(2)
        chips = _clean_chips(8192, seed=3) + 0.45 * rng.standard_normal(8192)
        uncorrected = CumulantDetector().statistic(chips)
        corrected = CumulantDetector().statistic(
            chips, chip_noise_variance=0.45**2
        )
        assert corrected.distance_squared < uncorrected.distance_squared

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            CumulantDetector(threshold=0.0)

    def test_feature_vector_shape(self):
        result = CumulantDetector().statistic(_clean_chips(256))
        assert result.feature.shape == (2,)


class TestThresholdCalibration:
    def test_threshold_between_populations(self):
        threshold = calibrate_threshold([0.01, 0.02, 0.05], [1.2, 1.5, 2.0])
        assert 0.05 < threshold < 1.2

    def test_geometric_midpoint(self):
        threshold = calibrate_threshold([0.01], [1.0])
        assert threshold == pytest.approx(0.1)

    def test_overlap_raises(self):
        with pytest.raises(DetectionError):
            calibrate_threshold([0.5, 1.0], [0.8, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            calibrate_threshold([], [1.0])
