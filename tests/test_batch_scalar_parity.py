"""Direct differential tests for every public batch/scalar kernel pair.

``tests/test_batched_trials.py`` pins the end-to-end contract (batched
experiment drivers == scalar drivers, bit for bit); this file pins each
*pair* in isolation, so a regression names the exact kernel that broke
instead of failing three driver tests at once.  It is also the test
anchor reprolint rule R008 (batch/scalar parity) checks for: every
``*_batch`` kernel and ``@batch_trial`` function must be referenced
from at least one test module, together with its scalar counterpart.
"""

import numpy as np
import pytest

from repro.defense.constellation import (
    ConstellationOptions,
    reconstruct_constellation,
    reconstruct_constellation_batch,
)
from repro.defense.moments import (
    estimate_cumulants,
    estimate_cumulants_batch,
)
from repro.experiments.common import (
    prepare_authentic,
    prepare_emulated,
    transmit_batch,
    transmit_once,
)
from repro.experiments.engine import MonteCarloEngine
from repro.utils.signal_ops import (
    lowpass_filter,
    lowpass_filter_batch,
    polyphase_resample,
    polyphase_resample_batch,
)
from repro.zigbee.receiver import ZigBeeReceiver


def _complex_rows(rng, count, length):
    return [
        rng.standard_normal(length) + 1j * rng.standard_normal(length)
        for _ in range(count)
    ]


class TestSignalOpsParity:
    def test_lowpass_filter_batch_matches_scalar(self):
        rng = np.random.default_rng(3)
        rows = _complex_rows(rng, 4, 400)
        batched = lowpass_filter_batch(np.stack(rows), 2e6, 20e6)
        for row, filtered in zip(rows, batched):
            assert np.array_equal(filtered, lowpass_filter(row, 2e6, 20e6))

    def test_polyphase_resample_batch_matches_scalar(self):
        rng = np.random.default_rng(4)
        rows = _complex_rows(rng, 3, 360)
        batched = polyphase_resample_batch(np.stack(rows), 4e6, 20e6)
        for row, resampled in zip(rows, batched):
            assert np.array_equal(
                resampled, polyphase_resample(row, 4e6, 20e6)
            )


class TestDefenseKernelParity:
    def test_reconstruct_constellation_batch_matches_scalar(self):
        rng = np.random.default_rng(5)
        soft = rng.standard_normal((5, 64))
        for options in (None, ConstellationOptions(drop_header_chips=8)):
            batched = reconstruct_constellation_batch(soft, options)
            for row, points in zip(soft, batched):
                assert np.array_equal(
                    points, reconstruct_constellation(row, options)
                )

    def test_estimate_cumulants_batch_matches_scalar(self):
        rng = np.random.default_rng(6)
        samples = rng.standard_normal((4, 32)) + 1j * rng.standard_normal((4, 32))
        variances = [0.0, 0.01, 0.25, 0.0]
        batched = estimate_cumulants_batch(samples, variances)
        for row, variance, estimate in zip(samples, variances, batched):
            assert estimate == estimate_cumulants(row, variance)


class TestZigbeeChainParity:
    def test_synchronize_batch_matches_scalar(self):
        receiver = ZigBeeReceiver()
        prepared = prepare_authentic()
        baseband = receiver.channelize(prepared.on_air)
        rng = np.random.default_rng(7)
        rows = [
            baseband.samples + 0.01 * (
                rng.standard_normal(baseband.samples.size)
                + 1j * rng.standard_normal(baseband.samples.size)
            )
            for _ in range(3)
        ]
        synchronizer = receiver._synchronizer
        batched = synchronizer.synchronize_batch(np.stack(rows))
        for row, result in zip(rows, batched):
            scalar = synchronizer.synchronize(baseband.with_samples(row))
            assert result == scalar

    def test_oqpsk_demodulate_batch_matches_scalar(self):
        from repro.zigbee.oqpsk import OqpskDemodulator

        demod = OqpskDemodulator()
        rng = np.random.default_rng(8)
        rows = _complex_rows(rng, 4, 130)
        num_chips = demod.capacity(130) - demod.capacity(130) % 2
        for phase_tracking in (False, True):
            soft, hard = demod.demodulate_batch(
                np.stack(rows), num_chips, phase_tracking=phase_tracking
            )
            for i, row in enumerate(rows):
                scalar = demod.demodulate(
                    row, num_chips, phase_tracking=phase_tracking
                )
                assert np.array_equal(soft[i], scalar.soft)
                assert np.array_equal(hard[i], scalar.hard)

    def test_quadrature_demodulate_batch_matches_scalar(self):
        from repro.zigbee.quadrature import QuadratureDemodulator

        demod = QuadratureDemodulator()
        rng = np.random.default_rng(9)
        rows = _complex_rows(rng, 4, 101)
        num_chips = demod.capacity(101)
        soft, hard = demod.demodulate_batch(np.stack(rows), num_chips)
        for i, row in enumerate(rows):
            scalar = demod.demodulate(row, num_chips)
            assert np.array_equal(soft[i], scalar.soft)
            assert np.array_equal(hard[i], scalar.hard)


class TestTransmitParity:
    def test_transmit_batch_matches_transmit_once(self):
        prepared = prepare_emulated(rng=3)
        receiver = ZigBeeReceiver()
        seeds = (21, 22, 23)
        batched = transmit_batch(
            prepared, receiver, 12.0,
            [np.random.default_rng(seed) for seed in seeds],
        )
        for seed, packet in zip(seeds, batched):
            scalar = transmit_once(
                prepared, receiver, 12.0, np.random.default_rng(seed)
            )
            if scalar is None:
                assert packet is None
                continue
            assert packet is not None
            assert packet.psdu == scalar.psdu
            assert packet.fcs_ok == scalar.fcs_ok


def _session_rows(trial, context, count, static_args, seed=11):
    with MonteCarloEngine().session(context) as session:
        return session.run(trial, count, rng=seed, static_args=static_args)


class TestTrialParity:
    """The four ``@batch_trial`` functions against their scalar twins.

    The engine derives identical per-trial seeds for both paths, so
    running each trial function through a fresh session at the same
    seed must produce identical rows.
    """

    def test_table2_trials_match(self):
        from repro.defense.detector import CumulantDetector
        from repro.experiments.table2_attack_awgn import (
            _authentic_trial,
            _authentic_trial_batch,
            _emulated_trial,
            _emulated_trial_batch,
        )
        from repro.hardware.usrp import gnuradio_simulation_receiver_config

        context = {
            "receiver": ZigBeeReceiver(gnuradio_simulation_receiver_config()),
            "emulated": prepare_emulated(rng=3),
            "authentic": prepare_authentic(),
            "detector": CumulantDetector(),
        }
        args = (15.0,)
        assert _session_rows(_emulated_trial_batch, context, 4, args) == \
            _session_rows(_emulated_trial, context, 4, args)
        assert _session_rows(_authentic_trial_batch, context, 4, args) == \
            _session_rows(_authentic_trial, context, 4, args)

    def test_statistic_trial_batch_matches_scalar(self):
        from repro.defense.detector import CumulantDetector
        from repro.experiments.defense_common import (
            defense_receiver,
            statistic_trial,
            statistic_trial_batch,
        )

        context = {
            "link": prepare_emulated(rng=3),
            "receiver": defense_receiver(),
            "detector": CumulantDetector(),
        }
        args = ("link", "quadrature", False, 15.0)
        batched = _session_rows(statistic_trial_batch, context, 4, args)
        scalar = _session_rows(statistic_trial, context, 4, args)
        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            if want is None:
                assert got is None
                continue
            assert got is not None
            assert got.distance_squared == want.distance_squared
            assert got.snr_db == want.snr_db
            assert got.detection.hypothesis == want.detection.hypothesis

    def test_link_trial_batch_matches_scalar(self):
        from repro.experiments.fig14_error_rates import (
            _link_trial,
            _link_trial_batch,
        )
        from repro.channel.environment import RealEnvironment
        from repro.hardware.usrp import usrp_receiver_config

        context = {
            "env": RealEnvironment(rng=0),
            "receivers": {"usrp": ZigBeeReceiver(usrp_receiver_config())},
            "original": prepare_authentic(),
        }
        loss_db = usrp_receiver_config().implementation_loss_db
        args = ("original", "usrp", 3.0, loss_db)
        batched = _session_rows(_link_trial_batch, context, 3, args)
        scalar = _session_rows(_link_trial, context, 3, args)
        assert len(batched) == len(scalar)
        for got, want in zip(batched, scalar):
            if want is None:
                assert got is None
                continue
            assert got is not None
            decoded_got, delivered_got, hamming_got = got
            decoded_want, delivered_want, hamming_want = want
            assert delivered_got == delivered_want
            assert np.array_equal(decoded_got, decoded_want)
            if hamming_want is None:
                assert hamming_got is None
            else:
                assert np.array_equal(hamming_got, hamming_want)


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
