"""Unit and property tests for the 802.15.4 FCS (CRC-16)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FcsError
from repro.utils.crc import append_fcs, crc16_802154, verify_fcs


class TestCrc16:
    def test_known_vector_empty(self):
        assert crc16_802154(b"") == 0x0000

    def test_known_vector_standard(self):
        # The ITU-T CRC-16 (reflected, zero init) of "123456789" is a
        # published check value: 0x6F91 for CRC-16/ARC variant... our
        # variant (poly 0x8408, init 0) is CRC-16/KERMIT: 0x2189.
        assert crc16_802154(b"123456789") == 0x2189

    def test_single_byte_changes_crc(self):
        assert crc16_802154(b"\x00") != crc16_802154(b"\x01")

    def test_append_and_verify(self):
        framed = append_fcs(b"hello")
        assert len(framed) == 7
        assert verify_fcs(framed) == b"hello"

    def test_verify_rejects_corruption(self):
        framed = bytearray(append_fcs(b"hello"))
        framed[0] ^= 0x01
        with pytest.raises(FcsError):
            verify_fcs(bytes(framed))

    def test_verify_rejects_short_frame(self):
        with pytest.raises(FcsError):
            verify_fcs(b"\x01")

    @given(st.binary(max_size=127))
    def test_roundtrip_property(self, payload):
        assert verify_fcs(append_fcs(payload)) == payload

    @given(st.binary(min_size=1, max_size=64), st.integers(0, 7))
    def test_any_single_bitflip_detected(self, payload, bit):
        framed = bytearray(append_fcs(payload))
        for position in range(len(framed)):
            corrupted = bytearray(framed)
            corrupted[position] ^= 1 << bit
            with pytest.raises(FcsError):
                verify_fcs(bytes(corrupted))
