#!/usr/bin/env python3
"""Anatomy of the waveform emulation attack, stage by stage.

Walks one observed ZigBee frame through every stage of Fig. 4 and prints
what each stage produced: the interpolation, the per-chunk FFT magnitude
table (the paper's Table I), the two-step subcarrier selection, the QAM
scale optimization, and the residual emulation error, plus the
codeword-constrained variant a standards-compliant radio would need.

Run:  python examples/attack_anatomy.py
"""

import numpy as np

from repro.attack import (
    WaveformEmulationAttack,
    project_onto_codewords,
    segment_into_wifi_symbols,
    spectrum_table,
    to_wifi_rate,
)
from repro.attack.quantize import quantization_error
from repro.wifi.qam import modulation_for_name
from repro.zigbee import ZigBeeTransmitter


def main() -> None:
    sent = ZigBeeTransmitter().transmit_payload(b"ANATOMY")
    print(f"observed: {len(sent.waveform)} samples at 4 Msps "
          f"({sent.symbols.size} data symbols)")

    # Stage 1: interpolation and segmentation.
    interpolated = to_wifi_rate(sent.waveform)
    chunks = segment_into_wifi_symbols(interpolated)
    print(f"interpolated x5 -> {len(interpolated)} samples at 20 Msps "
          f"-> {chunks.shape[0]} WiFi-symbol chunks of 80 samples")

    # Stage 2: the FFT magnitude table (Table I).
    spectra = spectrum_table(chunks)
    magnitudes = np.abs(spectra)
    print("\nFFT magnitudes (first 6 chunks, bins 1-4 and 62-64, 1-based):")
    for bin_index in (0, 1, 2, 3, 61, 62, 63):
        row = "  ".join(f"{magnitudes[i, bin_index]:7.2f}" for i in range(6))
        print(f"  bin {bin_index + 1:>2}: {row}")

    # Stage 3-4: run the full attack and report its internals.
    attack = WaveformEmulationAttack()
    emulation = attack.emulate(sent.waveform)
    alpha = emulation.scale
    print(f"\nselected bins (0-based): "
          f"{[int(i) for i in emulation.selection.indexes]}")
    print(f"optimized 64-QAM scale alpha = {alpha:.3f}")

    modulation = modulation_for_name("64qam")
    chosen = spectra[:, emulation.selection.indexes].reshape(-1)
    for candidate in (alpha / 2, alpha, alpha * 2):
        error = quantization_error(chosen, modulation, candidate)
        marker = "  <- optimum" if candidate == alpha else ""
        print(f"  total quantization error at alpha={candidate:7.2f}: "
              f"{error:10.2f}{marker}")

    print(f"\nresidual emulation NMSE over symbol bodies: "
          f"{emulation.emulation_error():.4f}")

    # Stage 5 (extension): what a standards-compliant chain could emit.
    points = emulation.quantization.constellation_points
    whole = (points.size // 48) * 48
    projection = project_onto_codewords(points[:whole], rate_mbps=54)
    print(f"codeword-constrained variant: {projection.point_agreement:.1%} of "
          f"QAM points survive the convolutional-code projection "
          f"(+{projection.extra_distortion:.1f} extra squared error)")


if __name__ == "__main__":
    main()
