#!/usr/bin/env python3
"""Record, persist, and replay: the attack as an offline workflow.

The attacker of Fig. 3 listens in time slot t1 and replays later.  This
example makes the timeline explicit with the capture format in
``repro.utils.io``: noisy observations are recorded to disk, a later
session loads them, averages them into a clean template, plans the
carrier placement, and performs the replay — which decodes at the victim
and is flagged by the defense.

Run:  python examples/capture_and_replay.py [--captures 12 --listen-snr 3]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.attack import (
    ChannelListener,
    WaveformEmulationAttack,
    feasible_custom_centers,
)
from repro.channel import AwgnChannel
from repro.defense import CumulantDetector
from repro.utils import Waveform
from repro.utils.io import load_waveform, save_waveform
from repro.zigbee import ZigBeeReceiver, ZigBeeTransmitter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--captures", type=int, default=12)
    parser.add_argument("--listen-snr", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="ctc-captures-"))
    print(f"capture directory: {workdir}")

    # --- time slot t1: record noisy observations to disk.
    gateway = ZigBeeTransmitter()
    command = gateway.transmit_payload(b"DISARM-ALARM", sequence_number=3)
    pad = np.zeros(200, dtype=complex)
    on_air = Waveform(
        np.concatenate([pad, command.waveform.samples, pad]), 4e6
    )
    for index in range(args.captures):
        noisy = AwgnChannel(args.listen_snr, rng=args.seed + index).apply(on_air)
        save_waveform(
            workdir / f"capture_{index:03d}.npz",
            noisy,
            {"slot": "t1", "index": str(index),
             "listen_snr_db": str(args.listen_snr)},
        )
    print(f"recorded {args.captures} captures at {args.listen_snr:.0f} dB "
          "listening SNR")

    # --- later: load, align, average.
    captures = []
    for path in sorted(workdir.glob("capture_*.npz")):
        waveform, metadata = load_waveform(path)
        assert metadata["slot"] == "t1"
        captures.append(waveform)
    listener = ChannelListener()
    template = listener.average(captures, length=len(command.waveform))
    print(f"averaged {template.used} aligned captures "
          f"({template.discarded} discarded)")

    # --- carrier planning: where can the attacker park its centre?
    plans = feasible_custom_centers(17)
    chosen = next(p for p in plans if p.offset_subcarriers == -16)
    print(f"carrier plan: ZigBee ch 17 from "
          f"{chosen.wifi_center_hz / 1e6:.1f} MHz "
          f"(offset {chosen.offset_subcarriers} subcarriers)")

    # --- time slot t2: the replay.
    attack = WaveformEmulationAttack()
    emulation = attack.emulate(template.waveform)
    save_waveform(
        workdir / "emulated.npz", emulation.waveform,
        {"slot": "t2", "alpha": f"{emulation.scale:.3f}"},
    )
    victim = ZigBeeReceiver()
    packet = victim.receive(attack.transmit_waveform(emulation))
    print(f"\nvictim decoded: fcs={packet.fcs_ok}, "
          f"payload={packet.mac_frame.payload if packet.mac_frame else None!r}")

    verdict = CumulantDetector().statistic(
        packet.diagnostics.psdu_quadrature_soft_chips
    )
    print(f"defense verdict: D_E^2 = {verdict.distance_squared:.4f} "
          f"-> {verdict.hypothesis.name}")


if __name__ == "__main__":
    main()
