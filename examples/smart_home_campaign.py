#!/usr/bin/env python3
"""A full smart-home campaign: many devices, live monitoring, ASCII plots.

Simulates a gateway commanding three ZigBee devices at different
distances while a WiFi attacker opportunistically replays intercepted
commands.  Every device runs the online :class:`AttackMonitor`; the
script reports per-device delivery/detection and draws the reconstructed
constellations of the last authentic and attack packets in the terminal.

Run:  python examples/smart_home_campaign.py [--rounds 15]
"""

import argparse

from repro.defense.constellation import reconstruct_constellation
from repro.link.campaign import CampaignSimulator
from repro.utils.terminal_plot import bar_chart, scatter_plot
from repro.zigbee import ZigBeeReceiver
from repro.attack import WaveformEmulationAttack
from repro.experiments.common import prepare_authentic, prepare_emulated


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=15)
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    simulator = CampaignSimulator([1.0, 3.5, 6.0], rng=args.seed)
    simulator.run_random_campaign(args.rounds, attack_probability=0.5)

    print("campaign results:")
    for device, stats in sorted(simulator.stats.items()):
        distance = simulator.devices[device]
        print(f"  device 0x{device:04X} @ {distance:.1f} m: "
              f"{stats.legitimate_delivered}/{stats.legitimate_sent} legit "
              f"delivered, {stats.attacks_delivered}/{stats.attacks_sent} "
              f"attacks delivered, {stats.attacks_detected} detected")

    false_alarms = sum(
        1 for event in simulator.events if not event.is_attack and event.detected
    )
    missed = sum(
        1 for event in simulator.events
        if event.is_attack and event.delivered and not event.detected
    )
    total_attacks = sum(1 for event in simulator.events if event.is_attack)
    print(f"\n  false alarms: {false_alarms}, missed attacks: {missed} "
          f"(of {total_attacks} attempted)")

    statistics = [e.statistic for e in simulator.events if e.statistic]
    legit = [e.statistic for e in simulator.events
             if e.statistic and not e.is_attack]
    attacks = [e.statistic for e in simulator.events
               if e.statistic and e.is_attack]
    if legit and attacks:
        print("\nper-class D_E^2 ranges:")
        print(bar_chart(
            ["legit max", "attack min"],
            [max(legit), min(attacks)],
            title="  the gap a threshold lives in:",
        ))

    # Constellation views of clean vs attacked receptions at high SNR.
    receiver = ZigBeeReceiver()
    authentic = receiver.receive(prepare_authentic(b"VIEW").on_air)
    emulated = receiver.receive(prepare_emulated(b"VIEW", rng=1).on_air)
    print()
    print(scatter_plot(
        reconstruct_constellation(
            authentic.diagnostics.psdu_quadrature_soft_chips),
        title="authentic chip constellation",
    ))
    print()
    print(scatter_plot(
        reconstruct_constellation(
            emulated.diagnostics.psdu_quadrature_soft_chips),
        title="emulated chip constellation (note the scatter)",
    ))


if __name__ == "__main__":
    main()
