#!/usr/bin/env python3
"""Quickstart: the paper's story in thirty lines.

A ZigBee gateway transmits a command; a WiFi attacker records it, hides
it inside a WiFi waveform, and replays it; the ZigBee receiver happily
decodes the fake — and the cumulant defense catches it.

Run:  python examples/quickstart.py
"""

from repro.attack import WaveformEmulationAttack
from repro.defense import CumulantDetector
from repro.zigbee import ZigBeeReceiver, ZigBeeTransmitter


def main() -> None:
    # 1. Channel listening: the attacker observes an authentic command.
    gateway = ZigBeeTransmitter()
    observed = gateway.transmit_payload(b"UNLOCK", sequence_number=7)
    print(f"gateway sent {len(observed.waveform)} baseband samples "
          f"({observed.waveform.duration_s * 1e6:.0f} us)")

    # 2. Waveform emulation: one WiFi symbol per quarter ZigBee symbol.
    attacker = WaveformEmulationAttack()
    emulation = attacker.emulate(observed.waveform)
    print(f"attacker kept subcarriers "
          f"{[int(i) for i in emulation.selection.indexes]} "
          f"with 64-QAM scale alpha = {emulation.scale:.2f}")

    # 3. The victim decodes the emulated waveform as a valid frame.
    victim = ZigBeeReceiver()
    packet = victim.receive(attacker.transmit_waveform(emulation))
    print(f"victim decoded: payload={packet.mac_frame.payload!r}, "
          f"FCS ok={packet.fcs_ok}, chip errors per symbol: "
          f"{max(packet.diagnostics.hamming_distances)} max")

    # 4. The defense reconstructs the chip constellation and tests it.
    detector = CumulantDetector()
    verdict = detector.statistic(packet.diagnostics.psdu_quadrature_soft_chips)
    print(f"defense: D_E^2 = {verdict.distance_squared:.4f} "
          f"-> {verdict.hypothesis.name}")

    # Compare with the authentic waveform through the same pipeline.
    authentic = victim.receive(
        observed.waveform.resampled_to(20e6)
    )
    clean = detector.statistic(
        authentic.diagnostics.psdu_quadrature_soft_chips
    )
    print(f"authentic baseline: D_E^2 = {clean.distance_squared:.6f} "
          f"-> {clean.hypothesis.name}")


if __name__ == "__main__":
    main()
