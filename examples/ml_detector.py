#!/usr/bin/env python3
"""Training a learned detector on higher-order-statistics features.

Generates a labelled dataset of received chip constellations (authentic
vs emulated, several SNRs), trains the numpy logistic-regression baseline
on half of it, and compares its held-out accuracy and score distribution
against the paper's fixed-threshold detector.

Run:  python examples/ml_detector.py [--per-class 25]
"""

import argparse

import numpy as np

from repro.defense.constellation import reconstruct_constellation
from repro.defense.detector import CumulantDetector
from repro.defense.mlbaseline import LogisticDetector, feature_vector
from repro.experiments.common import (
    prepare_authentic,
    prepare_emulated,
    transmit_once,
)
from repro.experiments.defense_common import defense_receiver
from repro.utils.rng import spawn_rngs


def gather(per_class, snrs, seed):
    receiver = defense_receiver()
    prepared = {0: prepare_authentic(), 1: prepare_emulated(rng=seed)}
    rngs = spawn_rngs(seed, 2 * len(snrs) * per_class)
    features, labels, de2 = [], [], []
    detector = CumulantDetector()
    index = 0
    for snr in snrs:
        for label, link in prepared.items():
            for _ in range(per_class):
                packet = transmit_once(link, receiver, snr, rngs[index])
                index += 1
                if packet is None or not packet.decoded:
                    continue
                chips = packet.diagnostics.psdu_quadrature_soft_chips
                points = reconstruct_constellation(chips)
                features.append(feature_vector(points))
                labels.append(label)
                de2.append(detector.statistic_from_points(points).distance_squared)
    return np.stack(features), np.asarray(labels), np.asarray(de2)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--per-class", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    snrs = (7.0, 12.0, 17.0)
    features, labels, de2 = gather(args.per_class, snrs, args.seed)
    print(f"dataset: {labels.size} samples, {int(labels.sum())} attacks, "
          f"{features.shape[1]} features")

    # Split even/odd for train/test (classes stay balanced by construction).
    train = np.arange(labels.size) % 2 == 0
    test = ~train
    model = LogisticDetector().fit(features[train], labels[train])
    accuracy = model.score(features[test], labels[test])
    print(f"\nlogistic regression held-out accuracy: {accuracy:.1%}")
    print("learned weights (standardized features):")
    for name, weight in zip(
        ("re_c40", "abs_c40", "c42", "abs_c20", "c63"), model.weights
    ):
        print(f"  {name:>8}: {weight:+.3f}")

    threshold_detector_accuracy = np.mean(
        (de2[test] >= CumulantDetector().threshold) == labels[test]
    )
    print(f"\nfixed-threshold detector accuracy on the same split: "
          f"{threshold_detector_accuracy:.1%}")
    print("(the paper's single statistic is already near-perfect here; the "
          "learned model matches it and adapts if the operating point drifts)")


if __name__ == "__main__":
    main()
