#!/usr/bin/env python3
"""Scenario: attacking a smart-home lock across the room.

The paper's motivation: WiFi reaches ~100 m while ZigBee reaches 1-10 m,
so a WiFi attacker can control ZigBee devices from a distance where the
legitimate gateway's signal is already marginal.  This example sweeps the
attacker's distance through a realistic indoor channel and reports the
command-delivery rate and RSSI at the victim, for both the commodity-chip
victim (CC26x2R1 profile) and an SDR victim (USRP profile).

Run:  python examples/smart_home_attack.py [--trials 10]
"""

import argparse

from repro.channel import RealEnvironment
from repro.hardware import (
    RssiEstimator,
    cc26x2_receiver_config,
    usrp_receiver_config,
)
from repro.link import EmulationAttackLink, ErrorRateAccumulator
from repro.zigbee import ZigBeeReceiver


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=10,
                        help="replays per distance")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    environment = RealEnvironment(rng=args.seed)
    rssi = RssiEstimator(reference_dbm=0.0)
    profiles = {
        "CC26x2R1 (commodity)": cc26x2_receiver_config(),
        "USRP + GNU Radio": usrp_receiver_config(),
    }

    print(f"{'distance':>8}  {'RSSI':>8}  " +
          "  ".join(f"{name:>22}" for name in profiles))
    for distance in (1, 2, 3, 4, 5, 6, 7, 8):
        rx_power = environment.budget.received_power_dbm(distance)
        rates = []
        for config in profiles.values():
            link = EmulationAttackLink(receiver=ZigBeeReceiver(config))
            accumulator = ErrorRateAccumulator()
            for trial in range(args.trials):
                channel = environment.channel_at(
                    distance, extra_loss_db=config.implementation_loss_db
                )
                outcome = link.send(b"LOCK-OPEN", channel=channel,
                                    sequence_number=trial)
                decoded = (
                    outcome.packet.diagnostics.psdu_symbols
                    if outcome.packet else []
                )
                accumulator.record(
                    outcome.truth_psdu_symbols, decoded, outcome.delivered
                )
            rates.append(accumulator.success_rate)
        cells = "  ".join(f"{rate:>21.0%} " for rate in rates)
        print(f"{distance:>6} m  {rssi.estimate_from_power_dbm(rx_power):>6.1f} dBm  "
              + cells)

    print("\nThe commodity chip keeps obeying the attacker far beyond the "
          "range where the SDR receiver gives up — Fig. 14's conclusion.")


if __name__ == "__main__":
    main()
