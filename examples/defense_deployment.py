#!/usr/bin/env python3
"""Deploying the defense: calibrate a threshold, then screen live traffic.

Follows the paper's protocol (Sec. VII-B): the first half of the captured
waveforms trains the threshold Q, the second half is classified.  Mixed
authentic/emulated traffic at several SNRs is screened and a confusion
matrix is printed.

Run:  python examples/defense_deployment.py [--per-class 15]
"""

import argparse

import numpy as np

from repro.channel import AwgnChannel
from repro.defense import CumulantDetector, calibrate_threshold
from repro.experiments.common import (
    prepare_authentic,
    prepare_emulated,
    transmit_once,
)
from repro.experiments.defense_common import defense_receiver
from repro.utils.rng import spawn_rngs


def gather(prepared, receiver, detector, snrs, count, rng):
    """Collect D_E^2 statistics over noisy receptions."""
    values = []
    rngs = spawn_rngs(rng, len(snrs) * count)
    i = 0
    for snr in snrs:
        for _ in range(count):
            packet = transmit_once(prepared, receiver, snr, rngs[i])
            i += 1
            if packet is None or not packet.decoded:
                continue
            chips = packet.diagnostics.psdu_quadrature_soft_chips
            values.append(detector.statistic(chips).distance_squared)
    return values


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--per-class", type=int, default=15)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    snrs = (7, 12, 17)
    receiver = defense_receiver()
    detector = CumulantDetector()
    authentic = prepare_authentic(b"telemetry")
    emulated = prepare_emulated(b"telemetry", rng=args.seed)

    # Phase 1: calibration.
    train_z = gather(authentic, receiver, detector, snrs,
                     args.per_class, rng=args.seed)
    train_e = gather(emulated, receiver, detector, snrs,
                     args.per_class, rng=args.seed + 1)
    threshold = calibrate_threshold(train_z, train_e)
    print(f"calibrated threshold Q = {threshold:.4f}")
    print(f"  training: zigbee D_E^2 in [{min(train_z):.5f}, {max(train_z):.5f}]")
    print(f"            emulated D_E^2 in [{min(train_e):.5f}, {max(train_e):.5f}]")

    # Phase 2: screening fresh traffic.
    test_z = gather(authentic, receiver, detector, snrs,
                    args.per_class, rng=args.seed + 2)
    test_e = gather(emulated, receiver, detector, snrs,
                    args.per_class, rng=args.seed + 3)
    false_alarms = sum(v >= threshold for v in test_z)
    misses = sum(v < threshold for v in test_e)

    print("\nconfusion matrix (rows = truth):")
    print(f"{'':>10} {'flag H0':>9} {'flag H1':>9}")
    print(f"{'zigbee':>10} {len(test_z) - false_alarms:>9} {false_alarms:>9}")
    print(f"{'attacker':>10} {misses:>9} {len(test_e) - misses:>9}")
    accuracy = 1 - (false_alarms + misses) / (len(test_z) + len(test_e))
    print(f"\naccuracy: {accuracy:.1%} over {len(test_z) + len(test_e)} packets "
          f"at SNRs {snrs} dB")


if __name__ == "__main__":
    main()
