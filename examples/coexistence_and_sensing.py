#!/usr/bin/env python3
"""Coexistence: spectrum occupancy, channel sensing, and a polite attacker.

Reproduces the paper's setting end to end:

1. measure the spectral footprint of the ZigBee frame, the emulated
   WiFi frame, and a real 802.11g frame (the 2 MHz / 20 MHz overlap the
   adversarial model of Fig. 3 is built on);
2. the attacker performs CSMA/CA channel sensing (Sec. IV-B) against a
   busy-then-idle medium before replaying;
3. the replay is delivered through co-channel WiFi interference and the
   defense still flags it.

Run:  python examples/coexistence_and_sensing.py
"""

import numpy as np

from repro.attack import WaveformEmulationAttack
from repro.channel import WifiInterferenceChannel
from repro.defense import CumulantDetector
from repro.link import CsmaSender, EnergyDetector
from repro.utils import Waveform, welch_psd
from repro.wifi import WifiTransmitter
from repro.zigbee import ZigBeeReceiver, ZigBeeTransmitter


def describe_spectrum(name: str, waveform: Waveform) -> None:
    spectrum = welch_psd(waveform, segment_length=512)
    bandwidth = spectrum.occupied_bandwidth(0.99)
    in_zigbee_band = spectrum.band_power(-1e6, 1e6) / spectrum.total_power
    print(f"  {name:22s} 99% bandwidth {bandwidth / 1e6:5.2f} MHz, "
          f"{in_zigbee_band:6.1%} of power inside the ZigBee 2 MHz band")


def main() -> None:
    gateway = ZigBeeTransmitter()
    observed = gateway.transmit_payload(b"SENSING")
    attacker = WaveformEmulationAttack()
    emulation = attacker.emulate(observed.waveform)
    wifi_frame = WifiTransmitter(rate_mbps=54).transmit_psdu(bytes(range(60)))

    print("spectral footprints:")
    describe_spectrum("ZigBee frame", observed.waveform.resampled_to(20e6))
    describe_spectrum("emulated frame", emulation.waveform)
    describe_spectrum("normal WiFi frame", wifi_frame.waveform)

    # --- channel sensing: the medium is busy with a ZigBee exchange for
    # its first 2 ms, then idle.
    busy = observed.waveform.resampled_to(20e6).samples
    idle = np.zeros(200_000, dtype=complex)
    medium = Waveform(np.concatenate([busy, idle]), 20e6)

    detector = EnergyDetector(threshold_db=-15.0, window_s=128e-6)
    print(f"\nchannel sensing: medium busy fraction = "
          f"{detector.busy_fraction(medium):.0%}")
    sender = CsmaSender(detector=detector, max_attempts=8, rng=1)
    outcome = sender.attempt(medium)
    print(f"CSMA/CA: transmitted={outcome.transmitted} after "
          f"{outcome.attempts} CCA attempts, "
          f"{outcome.total_backoff_s * 1e3:.2f} ms of backoff")

    # --- the replay itself, through co-channel WiFi interference.
    channel = WifiInterferenceChannel(
        interference_db=-12.0, duty_cycle=0.1, offset_hz=5e6, rng=2
    )
    received = channel.apply(attacker.transmit_waveform(emulation))
    victim = ZigBeeReceiver()
    packet = victim.receive(received)
    print(f"\nvictim decoded under interference: fcs={packet.fcs_ok}, "
          f"payload={packet.mac_frame.payload if packet.mac_frame else None!r}")

    verdict = CumulantDetector().statistic(
        packet.diagnostics.psdu_quadrature_soft_chips
    )
    print(f"defense verdict: D_E^2 = {verdict.distance_squared:.4f} "
          f"-> {verdict.hypothesis.name}")


if __name__ == "__main__":
    main()
