"""Table V benchmark: averaged D_E^2 vs distance in the real environment."""

from repro.experiments import table5_de2_distance


def test_bench_table5(benchmark, report):
    result = benchmark.pedantic(
        lambda: table5_de2_distance.run(waveforms_per_point=15, rng=0),
        rounds=1, iterations=1,
    )
    report(result)
    for row in result.rows:
        assert row["emulated_de2"] > 3 * row["zigbee_de2"]
