"""Fig. 6 benchmark: reconstructed constellations, AWGN vs real."""

from repro.experiments import fig6_constellation


def test_bench_fig6(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig6_constellation.run(rng=0), rounds=3, iterations=1
    )
    report(result)
    awgn_row, real_row = result.rows
    assert abs(real_row["phase_offset_deg"]) > abs(awgn_row["phase_offset_deg"])
