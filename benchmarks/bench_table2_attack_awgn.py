"""Table II benchmark: attack success rate vs SNR under AWGN."""

from repro.experiments import table2_attack_awgn


def test_bench_table2(benchmark, report):
    result = benchmark.pedantic(
        lambda: table2_attack_awgn.run(trials=60, rng=0),
        rounds=1, iterations=1,
    )
    report(result)
    rates = [row["success_rate"] for row in result.rows]
    assert rates[-1] == 1.0          # saturates at high SNR, like the paper
    assert rates[0] < rates[-1]      # ramps up from 7 dB
