"""Table III benchmark: theoretical cumulants and AMC classification."""

from repro.experiments import table3_theoretical_cumulants


def test_bench_table3(benchmark, report):
    result = benchmark.pedantic(
        lambda: table3_theoretical_cumulants.run(sample_count=20000, rng=0),
        rounds=3, iterations=1,
    )
    report(result)
    for row in result.rows:
        assert abs(row["C40"] - row["paper_C40"]) < 1e-3
        assert abs(row["C42"] - row["paper_C42"]) < 1e-3
