"""Table I benchmark: FFT magnitude table and subcarrier selection."""

from repro.experiments import table1_frequency_points


def test_bench_table1(benchmark, report):
    result = benchmark.pedantic(
        lambda: table1_frequency_points.run(rng=0), rounds=3, iterations=1
    )
    report(result)
    assert tuple(result.series["selected_bins"].astype(int)) == (
        0, 1, 2, 3, 61, 62, 63,
    )
