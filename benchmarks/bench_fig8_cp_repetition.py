"""Fig. 8 benchmark: the cyclic-prefix baseline fails at the receiver."""

from repro.experiments import fig8_cp_repetition


def test_bench_fig8(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig8_cp_repetition.run(rng=0), rounds=1, iterations=1
    )
    report(result)
    rows = {row["waveform"]: row for row in result.rows}
    assert rows["emulated"]["cp_correlation_pristine"] > 0.95
