"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation prints a small table quantifying how one attack design knob
moves the fidelity/detectability trade-off:

* number of kept subcarriers (paper: 7);
* optimized vs fixed constellation scale alpha;
* QAM order used for quantization (paper: 64-QAM);
* DSSS correlation threshold at the victim (paper: 10);
* raw QAM injection vs codeword-constrained emulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import EmulationConfig, WaveformEmulationAttack, emulate_waveform
from repro.attack.codeword import project_onto_codewords
from repro.defense import CumulantDetector
from repro.experiments.common import build_observed_waveform
from repro.experiments.defense_common import defense_receiver
from repro.zigbee.receiver import ReceiverConfig, ZigBeeReceiver


@pytest.fixture(scope="module")
def observed():
    return build_observed_waveform(b"ablation").waveform


def _detect(receiver, waveform, detector):
    packet = receiver.receive(waveform)
    return packet, detector.statistic(
        packet.diagnostics.psdu_quadrature_soft_chips
    ).distance_squared if packet.decoded else float("inf")


def test_bench_num_subcarriers(benchmark, capsys, observed):
    """More kept subcarriers -> better fidelity but no stealth gain."""
    receiver = defense_receiver()
    detector = CumulantDetector()

    def run():
        rows = []
        for kept in (3, 5, 7, 9, 15):
            result = emulate_waveform(
                observed, config=EmulationConfig(num_subcarriers=kept)
            )
            packet, de2 = _detect(receiver, result.waveform, detector)
            rows.append((kept, result.emulation_error(),
                         max(packet.diagnostics.hamming_distances), de2))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: kept subcarriers (paper: 7)")
        print(f"{'kept':>5} {'nmse':>9} {'maxHD':>6} {'DE2':>9}")
        for kept, nmse, max_hd, de2 in rows:
            print(f"{kept:>5} {nmse:>9.4f} {max_hd:>6} {de2:>9.4f}")
    errors = {kept: nmse for kept, nmse, _, __ in rows}
    # Fidelity improves monotonically up to the paper's 7 subcarriers;
    # beyond that the single global alpha must also cover tiny out-of-band
    # bins and the fit degrades again — the paper's choice is near-optimal.
    assert errors[3] > errors[5] > errors[7]
    assert errors[7] <= min(errors.values()) * 1.3


def test_bench_alpha_choice(benchmark, capsys, observed):
    """The optimized alpha beats fixed guesses, incl. the paper's sqrt(26)."""

    def run():
        rows = []
        optimum = emulate_waveform(observed)
        rows.append(("optimized", optimum.scale, optimum.emulation_error()))
        for fixed in (optimum.scale / 2, np.sqrt(26.0) * 42**0.5, optimum.scale * 2):
            result = emulate_waveform(
                observed, config=EmulationConfig(scale=float(fixed))
            )
            rows.append((f"fixed {fixed:.1f}", float(fixed),
                         result.emulation_error()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: constellation scale alpha")
        print(f"{'choice':>15} {'alpha':>8} {'nmse':>9}")
        for name, alpha, nmse in rows:
            print(f"{name:>15} {alpha:>8.2f} {nmse:>9.4f}")
    best = rows[0][2]
    assert all(best <= nmse + 1e-12 for _, __, nmse in rows)


def test_bench_qam_order(benchmark, capsys, observed):
    """Finer constellations quantize with less error (64-QAM suffices)."""

    def run():
        rows = []
        for name in ("qpsk", "16qam", "64qam"):
            result = emulate_waveform(
                observed, config=EmulationConfig(modulation_name=name)
            )
            rows.append((name, result.emulation_error()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: quantization constellation")
        print(f"{'modulation':>11} {'nmse':>9}")
        for name, nmse in rows:
            print(f"{name:>11} {nmse:>9.4f}")
    errors = [nmse for _, nmse in rows]
    assert errors == sorted(errors, reverse=True)


def test_bench_dsss_threshold(benchmark, capsys, observed):
    """The victim's chip threshold gates the attack (paper: 10 works)."""
    attack = WaveformEmulationAttack()
    emulation = attack.emulate(observed)
    on_air = attack.transmit_waveform(emulation)

    def run():
        rows = []
        for threshold in (1, 2, 3, 5, 10, 16):
            receiver = ZigBeeReceiver(
                ReceiverConfig(correlation_threshold=threshold)
            )
            packet = receiver.receive(on_air)
            rows.append((threshold, packet.decoded and packet.fcs_ok))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: DSSS correlation threshold at the victim")
        print(f"{'threshold':>10} {'attack delivers':>16}")
        for threshold, delivered in rows:
            print(f"{threshold:>10} {str(delivered):>16}")
    outcomes = dict(rows)
    assert outcomes[10] is True      # the paper's threshold admits the attack
    assert outcomes[1] is False      # a strict receiver would reject it


def test_bench_carrier_offset(benchmark, capsys, observed):
    """RF-mode carrier allocation only works at offsets whose shifted
    subcarriers land on data positions (Sec. V-A4's -16 example)."""
    from repro.attack.allocation import allocate_rf_data_points
    from repro.errors import EmulationError
    import numpy as np

    indexes = np.array([0, 1, 2, 3, 61, 62, 63])
    points = np.ones(7, dtype=complex)

    def run():
        rows = []
        for offset in range(-24, -7):
            try:
                allocate_rf_data_points(
                    indexes, points, rng=0, offset_subcarriers=offset
                )
                feasible = True
            except EmulationError:
                feasible = False
            rows.append((offset, feasible))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: attacker centre-frequency offset (subcarriers)")
        feasible = [str(offset) for offset, ok in rows if ok]
        infeasible = [str(offset) for offset, ok in rows if not ok]
        print(f"  feasible offsets:   {', '.join(feasible)}")
        print(f"  infeasible offsets: {', '.join(infeasible)} "
              f"(shifted bins hit pilots/nulls/guard)")
    outcome = dict(rows)
    assert outcome[-16] is True           # the paper's layout works
    # Offsets that push any shifted bin onto the -21 pilot or beyond the
    # -26 edge must fail.
    assert outcome[-18] is False
    assert outcome[-24] is False


def test_bench_codeword_constraint(benchmark, capsys, observed):
    """Standards compliance costs the attacker extra distortion."""

    def run():
        result = emulate_waveform(observed)
        points = result.quantization.constellation_points
        whole = (points.size // 48) * 48
        projection = project_onto_codewords(points[:whole], rate_mbps=54)
        return result, projection

    result, projection = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nablation: raw QAM injection vs codeword-constrained")
        print(f"  point agreement after projection: "
              f"{projection.point_agreement:.1%}")
        print(f"  extra squared error: {projection.extra_distortion:.2f}")
    assert 0.0 < projection.point_agreement <= 1.0
