"""Receiver calibration: SER/PER waterfalls of the two demodulation paths.

Not a paper artifact but the measurement the whole reproduction stands
on: where each receiver's decoding cliff sits versus in-band SNR.  The
coherent matched-filter path must outperform the quadrature
(discriminator) path by several dB — the mechanism behind Fig. 14's
USRP-vs-CC26x2 gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel
from repro.experiments.common import packet_delivered, prepare_authentic
from repro.utils.rng import spawn_rngs
from repro.zigbee.receiver import ReceiverConfig, ZigBeeReceiver


def _per(prepared, receiver, snr_db, trials, rng_seed):
    from repro.errors import SynchronizationError

    failures = 0
    for generator in spawn_rngs(rng_seed, trials):
        channel = AwgnChannel(
            snr_db, rng=generator, noise_bandwidth_hz=2e6
        )
        try:
            packet = receiver.receive(channel.apply(prepared.on_air))
        except SynchronizationError:
            failures += 1
            continue
        failures += not packet_delivered(prepared, packet)
    return failures / trials


def test_bench_demodulation_waterfalls(benchmark, capsys):
    prepared = prepare_authentic()
    matched = ZigBeeReceiver(ReceiverConfig(demodulation="matched_filter"))
    quadrature = ZigBeeReceiver(ReceiverConfig(demodulation="quadrature"))

    def run():
        rows = []
        for snr in (-2.0, 1.0, 4.0, 7.0, 10.0):
            rows.append(
                (
                    snr,
                    _per(prepared, matched, snr, 10, 10 + int(snr)),
                    _per(prepared, quadrature, snr, 10, 60 + int(snr)),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\ncalibration: packet error rate vs in-band SNR")
        print(f"{'snr':>5} {'matched filter':>15} {'quadrature':>11}")
        for snr, mf, quad in rows:
            print(f"{snr:>5.0f} {mf:>15.2f} {quad:>11.2f}")

    by_snr = {snr: (mf, quad) for snr, mf, quad in rows}
    # Both decode cleanly at 10 dB in-band.
    assert by_snr[10.0] == (0.0, 0.0)
    # The coherent path survives SNRs where the discriminator fails.
    assert by_snr[1.0][0] < by_snr[1.0][1]
    # And everything fails somewhere below.
    assert by_snr[-2.0][1] > 0.5
