"""Table IV benchmark: averaged D_E^2 vs SNR for both classes."""

from repro.experiments import table4_de2_snr


def test_bench_table4(benchmark, report):
    result = benchmark.pedantic(
        lambda: table4_de2_snr.run(waveforms_per_point=30, rng=0),
        rounds=1, iterations=1,
    )
    report(result)
    for row in result.rows:
        assert row["separation_factor"] > 10
