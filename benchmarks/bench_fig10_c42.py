"""Fig. 10 benchmark: C42 vs SNR for both waveform classes."""

from repro.experiments import fig10_c42


def test_bench_fig10(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig10_c42.run(waveforms_per_point=8, rng=0),
        rounds=1, iterations=1,
    )
    report(result)
    zigbee = result.series["zigbee"]
    emulated = result.series["emulated"]
    assert abs(zigbee[-1] + 1) < 0.05
    assert abs(emulated[-1] + 1) > 2 * abs(zigbee[-1] + 1)
