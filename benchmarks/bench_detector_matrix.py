"""Extension benchmark: which defense variant should be deployed?"""

from repro.experiments import detector_matrix


def test_bench_detector_matrix(benchmark, report):
    result = benchmark.pedantic(
        lambda: detector_matrix.run(waveforms_per_cell=8, rng=3),
        rounds=1, iterations=1,
    )
    report(result)
    margins = dict(
        zip((v.name for v in detector_matrix.STANDARD_VARIANTS),
            result.series["margins"])
    )
    # The noise-corrected matched-filter |C40| variant must separate all
    # scenarios with one threshold, and by the widest margin.
    assert margins["mf/|C40|/nc"] > 1.0
    assert margins["mf/|C40|/nc"] >= max(margins.values()) - 1e-9
