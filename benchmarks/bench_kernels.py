"""Micro-benchmarks of the hot kernels.

These back the paper's complexity analysis (Sec. VII-A): the attack is
O(M) in the number of observed samples and the defense is O(N) in the
number of chip samples — both fast enough to run per-packet.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attack import WaveformEmulationAttack
from repro.defense import CumulantDetector
from repro.experiments.common import build_observed_waveform
from repro.wifi.convcode import decode_with_rate, encode_with_rate
from repro.zigbee.receiver import ZigBeeReceiver
from repro.zigbee.transmitter import ZigBeeTransmitter


@pytest.fixture(scope="module")
def observed():
    return build_observed_waveform(b"kernel-bench")


def test_bench_zigbee_transmit(benchmark):
    transmitter = ZigBeeTransmitter()
    result = benchmark(lambda: transmitter.transmit_payload(b"kernel-bench"))
    assert result.waveform.power > 0


def test_bench_zigbee_receive(benchmark, observed):
    receiver = ZigBeeReceiver()
    waveform = observed.waveform
    packet = benchmark(lambda: receiver.receive(waveform, known_start=0))
    assert packet.fcs_ok


def test_bench_emulation_attack(benchmark, observed):
    attack = WaveformEmulationAttack()
    result = benchmark(lambda: attack.emulate(observed.waveform))
    assert result.scale > 0


def test_bench_detector_statistic(benchmark):
    rng = np.random.default_rng(0)
    chips = 2.0 * rng.integers(0, 2, 4096) - 1.0 + 0.05 * rng.standard_normal(4096)
    detector = CumulantDetector()
    result = benchmark(lambda: detector.statistic(chips))
    assert result.distance_squared < 0.5


def test_bench_zigbee_receive_batch(benchmark, observed):
    """Batched receive over a 32-row stack; compare per-row cost with
    ``test_bench_zigbee_receive`` for the vectorization win."""
    receiver = ZigBeeReceiver()
    waveform = observed.waveform
    stacked = np.tile(waveform.samples, (32, 1))
    packets = benchmark(
        lambda: receiver.receive_batch(
            stacked, waveform.sample_rate_hz, known_start=0
        )
    )
    assert all(packet is not None and packet.fcs_ok for packet in packets)


def test_bench_detector_statistic_batch(benchmark):
    rng = np.random.default_rng(0)
    rows = [
        2.0 * rng.integers(0, 2, 4096) - 1.0
        + 0.05 * rng.standard_normal(4096)
        for _ in range(32)
    ]
    detector = CumulantDetector()
    results = benchmark(lambda: detector.statistic_batch(rows))
    assert all(result.distance_squared < 0.5 for result in results)


def test_bench_batched_receive_matches_scalar(benchmark, observed):
    """The batched chain's rows equal scalar receptions bit-for-bit."""
    from repro.channel.awgn import add_awgn

    receiver = ZigBeeReceiver()
    waveform = observed.waveform
    rng = np.random.default_rng(7)
    stacked = np.stack(
        [add_awgn(waveform.samples, 15.0, rng=rng) for _ in range(8)]
    )
    scalars = [
        receiver.receive(waveform.with_samples(row), known_start=0)
        for row in stacked
    ]
    packets = benchmark(
        lambda: receiver.receive_batch(
            stacked, waveform.sample_rate_hz, known_start=0
        )
    )
    for packet, scalar in zip(packets, scalars):
        assert packet is not None
        assert packet.psdu == scalar.psdu
        assert np.array_equal(
            packet.diagnostics.soft_chips, scalar.diagnostics.soft_chips
        )


def test_bench_viterbi(benchmark):
    rng = np.random.default_rng(1)
    bits = np.concatenate(
        [rng.integers(0, 2, 210).astype(np.uint8), np.zeros(6, dtype=np.uint8)]
    )
    coded = encode_with_rate(bits, (3, 4))
    decoded = benchmark(lambda: decode_with_rate(coded, (3, 4), bits.size))
    assert np.array_equal(decoded, bits)


def test_bench_attack_complexity_is_linear(benchmark, capsys):
    """Doubling the observed samples ~doubles the attack's work (Sec. VII-A)."""
    import time

    attack = WaveformEmulationAttack()
    timings = {}
    for size in (10, 40):
        sent = ZigBeeTransmitter().transmit_payload(bytes(size))
        start = time.perf_counter()
        for _ in range(3):
            attack.emulate(sent.waveform)
        timings[size] = (time.perf_counter() - start) / 3

    ratio = timings[40] / timings[10]
    with capsys.disabled():
        print(f"\nattack runtime scaling (4x samples): {ratio:.2f}x")
    # Linear-ish: well below quadratic scaling (16x) with headroom.
    assert ratio < 9.0

    # Keep pytest-benchmark satisfied with a representative measurement.
    sent = ZigBeeTransmitter().transmit_payload(bytes(10))
    benchmark(lambda: attack.emulate(sent.waveform))
