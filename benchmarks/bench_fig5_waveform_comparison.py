"""Fig. 5 benchmark: original vs emulated waveform fidelity."""

from repro.experiments import fig5_waveform_comparison


def test_bench_fig5(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig5_waveform_comparison.run(rng=0), rounds=3, iterations=1
    )
    report(result)
    for row in result.rows:
        assert row["correlation_body"] > 0.9
