"""Fig. 11 benchmark: C40 vs SNR for both waveform classes."""

from repro.experiments import fig11_c40


def test_bench_fig11(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig11_c40.run(waveforms_per_point=8, rng=0),
        rounds=1, iterations=1,
    )
    report(result)
    assert result.series["zigbee"][-1] > 0.95
    assert result.series["emulated"][-1] < 0.9
