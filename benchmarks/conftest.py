"""Benchmark harness configuration.

Every ``bench_<artifact>`` module regenerates one table or figure of the
paper and prints it (so ``pytest benchmarks/ --benchmark-only`` doubles
as the reproduction report), while pytest-benchmark times the run.

Telemetry: each benchmark runs with spans enabled and its per-stage
span tree is attached to pytest-benchmark's ``extra_info``, so saved
``BENCH_*.json`` files carry a per-stage wall-clock breakdown alongside
the end-to-end timing.  Set ``REPRO_BENCH_TELEMETRY=0`` to measure the
pure no-op path (e.g. for overhead comparisons).
"""

from __future__ import annotations

import os

import pytest

from repro.telemetry import get_telemetry


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult outside of pytest's capture."""

    def _report(result) -> None:
        with capsys.disabled():
            print()
            print(result.format_table())

    return _report


@pytest.fixture(autouse=True)
def bench_telemetry(request):
    """Record spans per benchmark and attach them to the benchmark JSON."""
    if os.environ.get("REPRO_BENCH_TELEMETRY", "1") == "0":
        yield
        return
    telemetry = get_telemetry()
    telemetry.reset()
    telemetry.enable()
    try:
        yield
    finally:
        telemetry.disable()
        benchmark = request.node.funcargs.get("benchmark")
        if benchmark is not None and hasattr(benchmark, "extra_info"):
            snapshot = telemetry.snapshot()
            benchmark.extra_info["telemetry_spans"] = snapshot["spans"]
            benchmark.extra_info["telemetry_counters"] = (
                snapshot["metrics"]["counters"]
            )
        telemetry.reset()
