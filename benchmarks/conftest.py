"""Benchmark harness configuration.

Every ``bench_<artifact>`` module regenerates one table or figure of the
paper and prints it (so ``pytest benchmarks/ --benchmark-only`` doubles
as the reproduction report), while pytest-benchmark times the run.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult outside of pytest's capture."""

    def _report(result) -> None:
        with capsys.disabled():
            print()
            print(result.format_table())

    return _report
