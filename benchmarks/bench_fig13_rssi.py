"""Fig. 13 (table) benchmark: RSSI vs distance."""

from repro.experiments import fig13_rssi


def test_bench_fig13(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig13_rssi.run(packets_per_point=5, rng=0),
        rounds=1, iterations=1,
    )
    report(result)
    budget = [row["budget_rssi_dbm"] for row in result.rows]
    assert budget == sorted(budget, reverse=True)  # monotone decay
    # ~20 dB drop from 1 m to 8 m at exponent 2.
    assert 12 < budget[0] - budget[-1] < 30
