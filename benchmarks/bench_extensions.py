"""Benchmarks for the extension features beyond the paper.

* ROC curve of the single-packet detector across SNRs;
* sequential multi-packet detection: packets-to-decision;
* defense robustness under co-channel WiFi interference;
* the sixth-order (C63) extended feature's extra separation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.awgn import AwgnChannel
from repro.channel.interference import WifiInterferenceChannel
from repro.defense.constellation import reconstruct_constellation
from repro.defense.detector import CumulantDetector
from repro.defense.features import extended_feature
from repro.defense.roc import roc_curve
from repro.defense.sequential import SequentialDecision, SequentialDetector
from repro.experiments.common import prepare_authentic, prepare_emulated
from repro.experiments.defense_common import collect_statistics, defense_receiver
from repro.utils.rng import spawn_rngs


@pytest.fixture(scope="module")
def score_populations():
    """Per-SNR D_E^2 scores for both classes (shared by the benches)."""
    detector = CumulantDetector()
    authentic = prepare_authentic()
    emulated = prepare_emulated()
    populations = {}
    for i, snr in enumerate((7, 12, 17)):
        h0 = [s.distance_squared for s in collect_statistics(
            authentic, detector, snr, 12, rng=100 + i)]
        h1 = [s.distance_squared for s in collect_statistics(
            emulated, detector, snr, 12, rng=200 + i)]
        populations[snr] = (h0, h1)
    return populations


def test_bench_roc(benchmark, capsys, score_populations):
    def run():
        rows = []
        for snr, (h0, h1) in score_populations.items():
            curve = roc_curve(h0, h1)
            rows.append((snr, curve.auc, curve.equal_error_rate()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nextension: detector ROC per SNR")
        print(f"{'snr':>4} {'AUC':>7} {'EER':>7}")
        for snr, auc, eer in rows:
            print(f"{snr:>4} {auc:>7.4f} {eer:>7.4f}")
    for _, auc, eer in rows:
        assert auc == pytest.approx(1.0, abs=1e-6)
        assert eer == pytest.approx(0.0, abs=1e-6)


def test_bench_sequential_detection(benchmark, capsys, score_populations):
    h0_train = [v for h0, _ in score_populations.values() for v in h0]
    h1_train = [v for _, h1 in score_populations.values() for v in h1]

    def run():
        detector = SequentialDetector.calibrate(
            h0_train, h1_train, false_alarm_rate=1e-6, miss_rate=1e-6
        )
        # Feed held-out-style streams (reuse the 17 dB population).
        h0_stream = score_populations[17][0] * 3
        h1_stream = score_populations[17][1] * 3
        d0, n0 = detector.run(h0_stream)
        d1, n1 = detector.run(h1_stream)
        return d0, n0, d1, n1

    d0, n0, d1, n1 = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nextension: sequential detection at 1e-6 target error rates")
        print(f"  authentic stream -> {d0.value} after {n0} packets")
        print(f"  attack stream    -> {d1.value} after {n1} packets")
    assert d0 is SequentialDecision.AUTHENTIC
    assert d1 is SequentialDecision.ATTACK
    assert n1 <= 5  # evidence accumulates fast when classes are separated


def test_bench_defense_under_interference(benchmark, capsys):
    """Co-channel WiFi bursts must not break the classification."""
    receiver = defense_receiver()
    detector = CumulantDetector()
    authentic = prepare_authentic()
    emulated = prepare_emulated()

    def run():
        rows = []
        rngs = spawn_rngs(7, 20)
        for duty in (0.0, 0.05, 0.15):
            h0, h1 = [], []
            for i in range(6):
                for target, prepared in ((h0, authentic), (h1, emulated)):
                    channel = WifiInterferenceChannel(
                        interference_db=-12.0, duty_cycle=duty,
                        offset_hz=5e6, rng=rngs[i],
                    )
                    waveform = channel.apply(prepared.on_air)
                    waveform = AwgnChannel(17, rng=rngs[10 + i]).apply(waveform)
                    packet = receiver.receive(waveform)
                    if packet.decoded:
                        target.append(detector.statistic(
                            packet.diagnostics.psdu_quadrature_soft_chips
                        ).distance_squared)
            rows.append((duty, max(h0), min(h1)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nextension: defense under co-channel WiFi interference")
        print(f"{'duty':>6} {'zigbee max DE2':>15} {'emulated min DE2':>17}")
        for duty, h0_max, h1_min in rows:
            print(f"{duty:>6.2f} {h0_max:>15.4f} {h1_min:>17.4f}")
    for _, h0_max, h1_min in rows:
        assert h1_min > h0_max  # gap survives the interference


def test_bench_noisy_observation(benchmark, capsys):
    """Attack success vs listening SNR, with and without capture averaging.

    The paper assumes a noiseless observation; coherent averaging of K
    captures buys back 10 log10 K dB of listening SNR.
    """
    from repro.attack import WaveformEmulationAttack
    from repro.attack.observation import ChannelListener
    from repro.utils.signal_ops import Waveform
    from repro.zigbee.transmitter import ZigBeeTransmitter
    from repro.zigbee.receiver import ZigBeeReceiver

    transmitter = ZigBeeTransmitter()
    sent = transmitter.transmit_payload(b"observe")
    receiver = ZigBeeReceiver()
    attack = WaveformEmulationAttack()
    listener = ChannelListener()

    def captures(snr, count, seed0):
        pad = np.zeros(150, dtype=complex)
        clean = Waveform(
            np.concatenate([pad, sent.waveform.samples, pad]), 4e6
        )
        return [AwgnChannel(snr, rng=seed0 + i).apply(clean)
                for i in range(count)]

    from repro.errors import SynchronizationError

    def attack_from(template):
        emulation = attack.emulate(template)
        try:
            packet = receiver.receive(attack.transmit_waveform(emulation))
        except SynchronizationError:
            return False
        return packet.fcs_ok and packet.psdu == sent.ppdu[6:]

    def try_average(batch):
        try:
            return listener.average(batch, length=len(sent.waveform))
        except SynchronizationError:
            return None

    def run():
        rows = []
        for snr in (-9.0, -6.0, 0.0):
            single = 0
            averaged = 0
            for trial in range(4):
                seed0 = 1000 * trial + (int(snr) + 20) * 37
                batch = captures(snr, 16, seed0=seed0)
                one = try_average(batch[:1])
                many = try_average(batch)
                single += one is not None and attack_from(one.waveform)
                averaged += many is not None and attack_from(many.waveform)
            rows.append((snr, single / 4, averaged / 4))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nextension: attack success vs listening SNR")
        print(f"{'snr':>5} {'1 capture':>10} {'16 averaged':>12}")
        for snr, single, averaged in rows:
            print(f"{snr:>5.0f} {single:>10.2f} {averaged:>12.2f}")
    for _, single, averaged in rows:
        assert averaged >= single
    # Averaging rescues the -6 dB case where a single capture fails.
    assert rows[1][2] > rows[1][1]
    assert rows[-1][2] == 1.0


def test_bench_amc_accuracy(benchmark, capsys):
    """Flat vs hierarchical AMC accuracy over SNR (Swami & Sadler style)."""
    from repro.defense.amc import (
        CumulantClassifier,
        HierarchicalClassifier,
        synthesize_symbols,
    )

    names = ("BPSK", "4PAM", "QPSK", "8PSK", "16QAM", "64QAM")
    flat = CumulantClassifier(candidates=names)
    hierarchical = HierarchicalClassifier()

    def run():
        rows = []
        for snr in (8.0, 14.0, 20.0):
            noise = 10 ** (-snr / 10)
            flat_hits = tree_hits = 0
            trials = 0
            for seed, name in enumerate(names):
                for repeat in range(3):
                    symbols = synthesize_symbols(
                        name, 4000, snr_db=snr, rng=100 * seed + repeat
                    )
                    flat_hits += flat.classify(
                        symbols, noise_variance=noise).label == name
                    tree_hits += hierarchical.classify(
                        symbols, noise_variance=noise).label == name
                    trials += 1
            rows.append((snr, flat_hits / trials, tree_hits / trials))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nextension: AMC accuracy over Table III constellations")
        print(f"{'snr':>5} {'flat':>7} {'hierarchical':>13}")
        for snr, flat_acc, tree_acc in rows:
            print(f"{snr:>5.0f} {flat_acc:>7.2f} {tree_acc:>13.2f}")
    # Both classifiers are reliable at high SNR; the hierarchy never loses.
    assert rows[-1][1] >= 0.9
    assert all(tree >= flat - 0.12 for _, flat, tree in rows)


def test_bench_channel_planning(benchmark, capsys):
    """No standard WiFi channel aligns; 14 custom SDR centres do."""
    from repro.attack.planning import coverage_matrix, feasible_custom_centers

    def run():
        return coverage_matrix().sum(), len(feasible_custom_centers(17))

    standard, custom = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nextension: channel planning")
        print(f"  feasible standard WiFi channels (any ZigBee ch): {standard}")
        print(f"  feasible custom SDR centres for ZigBee 17:       {custom}")
    assert standard == 0
    assert custom == 14


def test_bench_sixth_order_feature(benchmark, capsys):
    """C63 adds a second axis of separation on top of [C40, C42]."""
    receiver = defense_receiver()
    authentic = prepare_authentic()
    emulated = prepare_emulated()

    def run():
        results = {}
        for label, prepared in (("zigbee", authentic), ("emulated", emulated)):
            waveform = AwgnChannel(17, rng=hash(label) % 1000).apply(
                prepared.on_air
            )
            packet = receiver.receive(waveform)
            points = reconstruct_constellation(
                packet.diagnostics.psdu_quadrature_soft_chips
            )
            feature = extended_feature(points)
            results[label] = (feature.c40, feature.c42, feature.c63,
                              feature.distance_squared())
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print("\nextension: sixth-order feature [C40, C42, C63]")
        print(f"{'class':>9} {'C40':>8} {'C42':>8} {'C63':>8} {'dist2':>9}")
        for label, (c40, c42, c63, dist) in results.items():
            print(f"{label:>9} {c40:>8.3f} {c42:>8.3f} {c63:>8.3f} {dist:>9.4f}")
    assert results["emulated"][3] > 5 * results["zigbee"][3]
