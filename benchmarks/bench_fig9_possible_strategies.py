"""Fig. 9 benchmark: phase-trajectory and chip-sequence baselines fail."""

from repro.experiments import fig9_possible_strategies


def test_bench_fig9(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig9_possible_strategies.run(rng=0), rounds=1, iterations=1
    )
    report(result)
    rows = {row["metric"]: row for row in result.rows}
    assert rows["decoded_symbol_agreement"]["original"] == 1.0
