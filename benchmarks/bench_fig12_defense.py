"""Fig. 12 benchmark: calibrated threshold classification."""

from repro.experiments import fig12_defense


def test_bench_fig12(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig12_defense.run(train_per_class=15, test_per_class=15, rng=0),
        rounds=1, iterations=1,
    )
    report(result)
    for row in result.rows:
        assert row["false_alarm_rate"] == 0.0
        assert row["miss_rate"] == 0.0
