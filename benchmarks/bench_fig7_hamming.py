"""Fig. 7 benchmark: Hamming distance distributions."""

from repro.experiments import fig7_hamming


def test_bench_fig7(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig7_hamming.run(num_packets=8, rng=0), rounds=1, iterations=1
    )
    report(result)
    assert result.series["original"][0] > 0.99
    assert result.series["emulated"][2:10].sum() > 0.95
