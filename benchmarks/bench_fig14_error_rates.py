"""Fig. 14 benchmark: error rates vs distance per receiver profile."""

from repro.experiments import fig14_error_rates


def test_bench_fig14(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig14_error_rates.run(trials=8, rng=0), rounds=1, iterations=1
    )
    report(result)

    def per(distance, receiver, waveform):
        for row in result.rows:
            if (row["distance_m"], row["receiver"], row["waveform"]) == (
                distance, receiver, waveform,
            ):
                return row["packet_error_rate"]
        raise AssertionError("missing cell")

    # USRP degrades with distance; the commodity chip holds out (Fig. 14b).
    assert per(8, "usrp", "emulated") > per(1, "usrp", "emulated")
    assert per(8, "cc26x2", "original") <= 0.25
