"""Legacy setuptools shim.

``pip install -e .`` reads pyproject.toml; this file only exists so the
editable install also works on minimal/offline toolchains where PEP 660
builds are unavailable (``pip install -e . --no-build-isolation`` or
``python setup.py develop``).
"""

from setuptools import setup

setup()
